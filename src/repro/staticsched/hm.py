"""Contention-adaptive scheduling in the Halldórsson–Mitra direction.

The paper remarks (Section 6.1) that reference [26] (Halldórsson &
Mitra, "Nearly optimal bounds for distributed wireless scheduling in
the SINR model", ICALP 2011) improves the analysis of the
Kesselheim–Vöcking algorithm from ``O(A-bar log n)`` to a *nearly
optimal* bound with a constant multiplicative factor — and leaves
fitting that analysis into the dynamic framework as an open problem.

:class:`HmScheduler` explores that open problem empirically. It is an
HM-*style* contention-adaptive scheduler, not a line-by-line
transcription of the ICALP'11 algorithm: in each slot every pending
link transmits its head request with probability

    p_e = min(1, chi / I_busy(e)),

where ``I_busy(e) = (W . B)(e)`` for the 0/1 indicator vector ``B`` of
links with a non-empty queue. The indicator (not the queue-length
vector) is the right residual: a link transmits at most one packet per
slot no matter how deep its queue, so only *which* links are busy
creates collisions. As links drain, probabilities adapt upward —
unlike the decay scheduler's fixed ``1/(4 I)`` — so the expected
measure cleared per slot stays a constant fraction and the schedule
length is ``O(I) + polylog`` instead of ``O(I log n)``.

Idealisation (documented, deliberate): the scheduler computes
``I_rem(e)`` from the global residual request vector. HM obtain an
equivalent estimate distributedly from acknowledgement feedback; we
grant it directly so the experiment isolates the *scheduling* question
(is the additive-polylog schedule length achievable, and what does the
transformation make of it?) from the estimation machinery. The X5
benchmark validates the resulting ``f(m) = O(1)`` length bound
empirically before the dynamic protocol relies on it.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.interference.base import InterferenceModel
from repro.staticsched.base import LengthBound, RunResult, StaticAlgorithm
from repro.staticsched.kernel import make_run_state
from repro.staticsched.runloop import HmPolicy, resolve_backend, run_fused
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class HmScheduler(StaticAlgorithm):
    """Adaptive ``chi / I_rem`` random transmission (HM-style).

    Parameters
    ----------
    chi:
        The per-slot aggressiveness: transmission probability is
        ``min(1, chi / I_rem(e))``. The default 1/4 mirrors the decay
        scheduler's constant so the two are directly comparable.
    budget_scale:
        Factor on the recommended budget (head-room for the
        high-probability guarantee).
    polylog_scale:
        Factor on the additive ``log^2(m+2) * log(n+2)`` straggler term
        of the budget.
    """

    name = "hm"

    def __init__(
        self,
        chi: float = 0.25,
        budget_scale: float = 3.0,
        polylog_scale: float = 2.0,
    ):
        self._chi = check_positive("chi", chi)
        self._budget_scale = check_positive("budget_scale", budget_scale)
        self._polylog_scale = check_positive("polylog_scale", polylog_scale)

    def state_dict(self):
        return {
            "name": self.name,
            "chi": self._chi,
            "budget_scale": self._budget_scale,
            "polylog_scale": self._polylog_scale,
        }

    def budget_for(self, measure: float, n: int) -> int:
        """``O(I) + O(log^2 m log n)`` — with ``m`` unknown, uses ``n``.

        ``budget_for`` only sees the instance, so the polylog term uses
        ``n`` as the (over-)estimate of ``m``; :meth:`network_bound`
        exposes the sharper network-level form the protocol sizes
        frames with.
        """
        measure = max(measure, 1.0)
        polylog = (
            self._polylog_scale
            * math.log(n + 2) ** 2
            * math.log(n + 2)
        )
        return max(
            1,
            math.ceil(
                self._budget_scale * measure / self._chi + polylog
            ),
        )

    def network_bound(self, m: int) -> LengthBound:
        """Constant multiplicative factor, polylog additive term."""
        scale = self._budget_scale / self._chi

        def additive(m_: int, n: int) -> float:
            return (
                self._polylog_scale
                * math.log(m_ + 2) ** 2
                * math.log(n + 2)
            )

        return LengthBound(
            multiplicative=lambda m_: scale,
            additive=additive,
            description=(
                f"{scale:.1f} I + {self._polylog_scale:.1f} "
                "log^2(m) log(n) [HM-style adaptive contention]"
            ),
        )

    def fused_policy(self) -> HmPolicy:
        """A fresh fused-loop policy mirroring :meth:`run`'s dispatch
        (the batched fleet kernel builds its per-network tasks here)."""
        return HmPolicy(self._chi)

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        gen = ensure_rng(rng)
        backend = resolve_backend()
        if backend in ("numpy", "numba"):
            # The HM recurrence divides by incrementally maintained
            # row sums; the compiled backend keeps the transmission
            # probabilities identical by maintaining them with a
            # bit-exact replay of numpy's pairwise summation (see
            # _runloop_numba._pairwise_sum and its self-check gate).
            return run_fused(
                self.fused_policy(),
                model, requests, budget, gen, record_history,
                backend=backend,
            )
        kernel, queues, delivered, history = make_run_state(
            model, requests, record_history
        )

        # I_busy(e) = (W . B)(e) restricted to busy links is the row sum
        # of the busy-set submatrix. Cache it once and update it
        # incrementally as links drain — O(busy) per slot instead of a
        # fresh O(busy * m) matvec.
        sub = model.weight_matrix()[np.ix_(kernel.busy, kernel.busy)]
        contention = sub.sum(axis=1)

        slots = 0
        while slots < budget and kernel.pending:
            p = np.minimum(1.0, self._chi / np.maximum(contention, 1.0))
            attempt = gen.random(kernel.size) < p
            kernel.transmit(attempt)
            if kernel.last_keep is not None:
                keep = kernel.last_keep
                gone = ~keep
                contention = (
                    contention[keep] - sub[np.ix_(keep, gone)].sum(axis=1)
                )
                sub = sub[np.ix_(keep, keep)]
            slots += 1
        return self._finalise(queues, delivered, slots, history)


__all__ = ["HmScheduler"]
