"""Centralized scheduler with free power control (Corollary 14, via [32]).

Repeats the SODA'11-style capacity-selection primitive
(:class:`~repro.sinr.capacity.PowerControlCapacity`) slot by slot: pick
a simultaneously feasible subset of the backlogged links together with
per-slot powers, transmit it, advance the queues. Against the Section-
6.2 power-control weights the pending measure shrinks geometrically, so
``O(I log n)`` slots suffice — the bound the paper quotes for [32].

The scheduler is centralized (the selection needs global knowledge),
exactly as Corollary 14 concedes; the transformation still applies and
yields the centralized ``O(log m)`` / ``O(log^2 m)``-competitive
protocols.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import SchedulingError
from repro.interference.base import InterferenceModel
from repro.sinr.capacity import PowerControlCapacity
from repro.sinr.model import SinrModel
from repro.staticsched.base import (
    LinkQueues,
    RunResult,
    SlotRecord,
    StaticAlgorithm,
)
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive


class PowerControlScheduler(StaticAlgorithm):
    """Greedy per-slot capacity selection with per-slot powers.

    Parameters
    ----------
    tau:
        Admission budget per slot (see
        :class:`~repro.sinr.capacity.PowerControlCapacity`).
    budget_scale:
        Factor on the ``O(I log n)`` budget recommendation.
    """

    name = "power-control"

    def __init__(self, tau: float = 0.25, budget_scale: float = 12.0):
        self._tau = check_positive("tau", tau)
        self._budget_scale = check_positive("budget_scale", budget_scale)

    def budget_for(self, measure: float, n: int) -> int:
        measure = max(measure, 1.0)
        # Each slot clears at most ~tau worth of weight per admitted
        # link's neighbourhood, hence the 1/tau factor in the budget.
        return max(
            1,
            math.ceil(
                self._budget_scale * (measure / self._tau) * math.log(n + 2)
                / 10.0
                + self._budget_scale * math.log(n + 2)
            ),
        )

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        if not isinstance(model, SinrModel):
            raise SchedulingError(
                "power control needs a SinrModel ground truth; got "
                f"{type(model).__name__}"
            )
        capacity = PowerControlCapacity(model, tau=self._tau)
        queues = LinkQueues(requests, model.num_links)
        delivered: List[int] = []
        history: Optional[List[SlotRecord]] = [] if record_history else None
        slots = 0
        while slots < budget and queues.pending:
            selection = capacity.select(queues.busy_links())
            # select() verified feasibility with the chosen powers, so
            # every selected link's head request is served.
            for link_id in selection.links:
                delivered.append(queues.pop(link_id))
            if history is not None:
                chosen = tuple(sorted(selection.links))
                history.append(SlotRecord(chosen, chosen))
            slots += 1
            if not selection.links and queues.pending:
                # Nothing admissible would be a bug: singletons are
                # always admissible, so selection can only be empty when
                # no link is busy.
                raise SchedulingError(
                    "capacity selection returned empty on a busy network"
                )
        return self._finalise(queues, delivered, slots, history)


__all__ = ["PowerControlScheduler"]
