"""Omniscient greedy baseline scheduler.

Not from the paper — a *comparator*. Each slot it greedily packs a
maximal feasible transmission set: busy links in decreasing backlog
order, adding a link whenever the grown set remains fully successful
under the model's exact predicate. This approximates the per-slot
behaviour of the optimal (Tassiulas-Ephremides max-weight) policy that
the paper's competitive ratios are measured against, at a cost the
simulations can afford.

Used by :mod:`repro.core.competitive` to upper-bound the achievable
service rate of an instance and in benchmarks as the "OPT-ish" row.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import SchedulingError
from repro.interference.base import InterferenceModel
from repro.staticsched.base import (
    LinkQueues,
    RunResult,
    SlotRecord,
    StaticAlgorithm,
)
from repro.utils.rng import RngLike


class OracleScheduler(StaticAlgorithm):
    """Greedy maximal feasible set per slot, longest backlog first."""

    name = "oracle"

    def budget_for(self, measure: float, n: int) -> int:
        """Generous fallback: measure plus one slot per request."""
        return max(1, math.ceil(measure) + int(n))

    def greedy_feasible_set(
        self, model: InterferenceModel, busy_links: Sequence[int]
    ) -> List[int]:
        """A maximal set where *every* member succeeds simultaneously."""
        chosen: List[int] = []
        for link_id in busy_links:
            candidate = chosen + [link_id]
            if model.feasible_set(candidate):
                chosen = candidate
        return chosen

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        queues = LinkQueues(requests, model.num_links)
        delivered: List[int] = []
        history: Optional[List[SlotRecord]] = [] if record_history else None
        slots = 0
        while slots < budget and queues.pending:
            busy = sorted(
                queues.busy_links(),
                key=lambda e: (-queues.queue_length(e), e),
            )
            transmitting = self.greedy_feasible_set(model, busy)
            self._transmit(model, queues, transmitting, delivered, history)
            slots += 1
        return self._finalise(queues, delivered, slots, history)


__all__ = ["OracleScheduler"]
