"""The vectorized slot kernel shared by the static schedulers.

Every static scheduler in :mod:`repro.staticsched` runs the same hot
loop: decide which busy links transmit this slot, evaluate the
interference model, serve the FIFO heads of the successful links,
repeat. Historically each scheduler walked Python dicts per slot and
the model re-sliced ``W`` per call; :class:`SlotKernel` replaces that
with array state:

* ``busy`` — sorted int64 array of links with pending requests;
* ``depths`` — queue depths aligned with ``busy``;
* a :class:`~repro.interference.base.BatchSuccessEvaluator` obtained
  from the model once per run, which caches active-set submatrices and
  updates them incrementally as links drain.

Schedulers keep their per-link adaptive state (transmission
probabilities, idle streaks...) as arrays aligned with ``busy`` and
draw their Bernoulli coins in one batched ``Generator.random(size=k)``
call per slot. Because numpy generators fill batched draws from the
same stream as repeated scalar calls, a batched scheduler replays
bit-for-bit against its scalar-loop ancestor.

Reference mode
--------------
``successes()`` on the models remains the ground-truth semantics. The
:func:`scalar_reference` context manager forces every kernel built
inside it to evaluate slots through the scalar path (one
``successes()`` call per slot); the parity tests run each scheduler
twice from one seed — vectorized and reference — and require identical
:class:`~repro.staticsched.base.RunResult`\\ s.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional, Tuple

import numpy as np

from repro.interference.base import InterferenceModel, ScalarBatchEvaluator
from repro.staticsched.base import LinkQueues, SlotRecord

_force_scalar = False


@contextmanager
def scalar_reference():
    """Force kernels created in this context onto the scalar success path.

    Used by verification: the vectorized evaluators must reproduce the
    reference run exactly (same RNG stream, same ``RunResult``).
    """
    global _force_scalar
    previous = _force_scalar
    _force_scalar = True
    try:
        yield
    finally:
        _force_scalar = previous


def scalar_forced() -> bool:
    """Whether kernels are currently pinned to the scalar reference."""
    return _force_scalar


class SlotKernel:
    """Array-first slot-loop state for one static-algorithm run.

    The kernel owns the coupling between the request FIFO queues, the
    interference model's batch evaluator, delivery bookkeeping, and
    optional history recording. Schedulers drive it with one
    :meth:`transmit` call per slot, passing a boolean mask over
    :attr:`busy`.

    Compaction contract: when a transmit empties some link's queue, the
    kernel shrinks ``busy``/``depths`` (and the evaluator's caches) and
    exposes the local keep mask as :attr:`last_keep` for exactly one
    call; schedulers apply their per-link state updates using the
    *pre-compaction* indexing of the returned success mask, then slice
    their arrays by ``last_keep``.
    """

    def __init__(
        self,
        model: InterferenceModel,
        queues: LinkQueues,
        delivered: List[int],
        history: Optional[List[SlotRecord]],
    ):
        self._model = model
        self._queues = queues
        self._delivered = delivered
        self._history = history
        self.busy: np.ndarray = queues.busy_array()
        self.depths: np.ndarray = queues.depths_for(self.busy)
        if _force_scalar:
            self._evaluator = ScalarBatchEvaluator(model, self.busy)
        else:
            self._evaluator = model.batch_evaluator(self.busy)
        self.last_keep: Optional[np.ndarray] = None
        # Reused all-False mask returned for idle slots, so the common
        # nobody-transmits case costs no allocation. Treated as
        # read-only by contract (boolean-mask consumers never write
        # through it).
        self._no_success = np.zeros(self.busy.size, dtype=bool)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests not yet served."""
        return self._queues.pending

    @property
    def size(self) -> int:
        """Number of busy links."""
        return int(self.busy.size)

    # ------------------------------------------------------------------
    # The slot step
    # ------------------------------------------------------------------

    def transmit(self, transmit_local: np.ndarray) -> np.ndarray:
        """Run one slot with the given local transmit mask.

        Returns the local success mask in *pre-compaction* indexing and
        sets :attr:`last_keep` when links drained (``None`` otherwise).
        """
        self.last_keep = None
        if not transmit_local.any():
            # Idle slot: the model is not consulted (matching the
            # scalar loop, which skipped ``successes([])``).
            if self._history is not None:
                self._history.append(SlotRecord((), ()))
            return self._no_success
        success = self._evaluator.successes_local(transmit_local)
        if self._history is not None:
            self._history.append(
                SlotRecord(
                    tuple(int(e) for e in self.busy[transmit_local]),
                    tuple(int(e) for e in self.busy[success]),
                )
            )
        if success.any():
            # busy is sorted, so heads pop in ascending link order —
            # the same delivery order as the scalar loop — and the
            # whole success set pops in one gather.
            self._delivered.extend(
                self._queues.pop_heads(self.busy[success]).tolist()
            )
            served_depths = self.depths[success] - 1
            self.depths[success] = served_depths
            if not served_depths.all():
                keep = self.depths > 0
                self.busy = self.busy[keep]
                self.depths = self.depths[keep]
                self._evaluator.drop(keep)
                self.last_keep = keep
                self._no_success = np.zeros(self.busy.size, dtype=bool)
        return success


def make_run_state(
    model: InterferenceModel,
    requests,
    record_history: bool,
) -> Tuple[SlotKernel, LinkQueues, List[int], Optional[List[SlotRecord]]]:
    """Build the (kernel, queues, delivered, history) tuple for a run."""
    queues = LinkQueues(requests, model.num_links)
    delivered: List[int] = []
    history: Optional[List[SlotRecord]] = [] if record_history else None
    kernel = SlotKernel(model, queues, delivered, history)
    return kernel, queues, delivered, history


__all__ = [
    "SlotKernel",
    "make_run_state",
    "scalar_reference",
    "scalar_forced",
]
