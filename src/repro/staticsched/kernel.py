"""The vectorized slot kernel shared by the static schedulers.

Every static scheduler in :mod:`repro.staticsched` runs the same hot
loop: decide which busy links transmit this slot, evaluate the
interference model, serve the FIFO heads of the successful links,
repeat. Historically each scheduler walked Python dicts per slot and
the model re-sliced ``W`` per call; :class:`SlotKernel` replaces that
with array state:

* ``busy`` — sorted int64 array of links with pending requests;
* ``depths`` — queue depths aligned with ``busy``;
* a :class:`~repro.interference.base.BatchSuccessEvaluator` obtained
  from the model once per run, which caches active-set submatrices and
  updates them incrementally as links drain.

Schedulers keep their per-link adaptive state (transmission
probabilities, idle streaks...) as arrays aligned with ``busy`` and
draw their Bernoulli coins in one batched ``Generator.random(size=k)``
call per slot. Because numpy generators fill batched draws from the
same stream as repeated scalar calls, a batched scheduler replays
bit-for-bit against its scalar-loop ancestor.

This per-slot kernel is the ``kernel`` run-loop backend; the fused
and compiled backends live in :mod:`repro.staticsched.runloop`, which
also owns backend selection.

Reference mode
--------------
``successes()`` on the models remains the ground-truth semantics. The
:func:`scalar_reference` context manager forces every run started
inside it onto the scalar ``scalar`` backend (one ``successes()`` call
per slot, through this kernel) — it wins ties against any other
backend selection; the parity tests run each scheduler per backend
from one seed and require identical
:class:`~repro.staticsched.base.RunResult`\\ s.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.interference.base import InterferenceModel, ScalarBatchEvaluator
from repro.staticsched import runloop
from repro.staticsched.base import LazySlotHistory, LinkQueues


def scalar_reference():
    """Force runs created in this context onto the scalar success path.

    Used by verification: the vectorized evaluators and the fused
    backends must reproduce the reference run exactly (same RNG
    stream, same ``RunResult``). A scalar context wins ties against
    every other backend selection (see
    :func:`repro.staticsched.runloop.use_backend`).
    """
    return runloop.use_backend("scalar")


def scalar_forced() -> bool:
    """Whether runs are currently pinned to the scalar reference."""
    return runloop.scalar_forced()


class SlotKernel:
    """Array-first slot-loop state for one static-algorithm run.

    The kernel owns the coupling between the request FIFO queues, the
    interference model's batch evaluator, delivery bookkeeping, and
    optional history recording. Schedulers drive it with one
    :meth:`transmit` call per slot, passing a boolean mask over
    :attr:`busy`.

    Compaction contract: when a transmit empties some link's queue, the
    kernel shrinks ``busy``/``depths`` (and the evaluator's caches) and
    exposes the local keep mask as :attr:`last_keep` for exactly one
    call; schedulers apply their per-link state updates using the
    *pre-compaction* indexing of the returned success mask, then slice
    their arrays by ``last_keep``.
    """

    def __init__(
        self,
        model: InterferenceModel,
        queues: LinkQueues,
        delivered: List[int],
        history: Optional[LazySlotHistory],
    ):
        self._model = model
        self._queues = queues
        self._delivered = delivered
        self._history = history
        self.busy: np.ndarray = queues.busy_array()
        self.depths: np.ndarray = queues.depths_for(self.busy)
        if runloop.resolve_backend() == "scalar":
            self._evaluator = ScalarBatchEvaluator(model, self.busy)
        else:
            self._evaluator = model.batch_evaluator(self.busy)
        self.last_keep: Optional[np.ndarray] = None
        self._no_success = self._make_no_success()

    def _make_no_success(self) -> np.ndarray:
        # Reused all-False mask returned for idle slots, so the common
        # nobody-transmits case costs no allocation. Read-only so the
        # "treated as read-only by contract" rule is enforced, not
        # just documented: a consumer writing through it raises.
        mask = np.zeros(self.busy.size, dtype=bool)
        mask.setflags(write=False)
        return mask

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests not yet served."""
        return self._queues.pending

    @property
    def size(self) -> int:
        """Number of busy links."""
        return int(self.busy.size)

    # ------------------------------------------------------------------
    # The slot step
    # ------------------------------------------------------------------

    def transmit(self, transmit_local: np.ndarray) -> np.ndarray:
        """Run one slot with the given local transmit mask.

        Returns the local success mask in *pre-compaction* indexing and
        sets :attr:`last_keep` when links drained (``None`` otherwise).
        """
        self.last_keep = None
        if not transmit_local.any():
            # Idle slot: the model is not consulted (matching the
            # scalar loop, which skipped ``successes([])``).
            if self._history is not None:
                self._history.append_empty()
            return self._no_success
        success = self._evaluator.successes_local(transmit_local)
        if self._history is not None:
            # Record raw id arrays; SlotRecord tuples materialise
            # lazily on access (LazySlotHistory).
            self._history.append_ids(
                self.busy[transmit_local], self.busy[success]
            )
        if success.any():
            # busy is sorted, so heads pop in ascending link order —
            # the same delivery order as the scalar loop — and the
            # whole success set pops in one gather.
            self._delivered.extend(
                self._queues.pop_heads(self.busy[success]).tolist()
            )
            served_depths = self.depths[success] - 1
            self.depths[success] = served_depths
            if not served_depths.all():
                keep = self.depths > 0
                self.busy = self.busy[keep]
                self.depths = self.depths[keep]
                self._evaluator.drop(keep)
                self.last_keep = keep
                self._no_success = self._make_no_success()
        return success


def make_run_state(
    model: InterferenceModel,
    requests,
    record_history: bool,
) -> Tuple[SlotKernel, LinkQueues, List[int], Optional[LazySlotHistory]]:
    """Build the (kernel, queues, delivered, history) tuple for a run."""
    queues = LinkQueues(requests, model.num_links)
    delivered: List[int] = []
    history: Optional[LazySlotHistory] = (
        LazySlotHistory() if record_history else None
    )
    kernel = SlotKernel(model, queues, delivered, history)
    return kernel, queues, delivered, history


__all__ = [
    "SlotKernel",
    "make_run_state",
    "scalar_reference",
    "scalar_forced",
]
