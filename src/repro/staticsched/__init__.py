"""Static scheduling algorithms: serve a fixed request set, slot by slot.

These are the building blocks the paper's transformation consumes: an
algorithm ``A(I, n)`` that, run on at most ``n`` single-hop transmission
requests of interference measure at most ``I``, delivers everything
within its slot budget with high probability.

All algorithms share the :class:`~repro.staticsched.base.StaticAlgorithm`
interface — ``run(model, requests, budget, rng)`` — and carry a
:class:`~repro.staticsched.base.LengthBound` describing the budget they
need in the ``f(m) * I + g(m, n)`` form the Section-4 protocol sizes its
frames with.

The per-slot execution of the randomized schedulers runs through a
pluggable run-loop backend (:mod:`repro.staticsched.runloop`): the
fused pure-numpy backend by default (chunked Bernoulli draws, sparse
attempter-set bookkeeping, lazy history), an optional numba-compiled
backend when numba is importable, and the per-slot ``kernel`` path
(:mod:`repro.staticsched.kernel`) as the benchmark baseline.
``kernel.scalar_reference()`` pins runs to the scalar ``successes()``
reference path for verification; every backend replays it
bit-for-bit from one seed.

Included algorithms (paper references in each module):

========================  =====================================  =======================
module                    algorithm                              length (whp)
========================  =====================================  =======================
``decay``                 random 1/(4I) transmission (Thm 19)    ``O(I log n)``
``fkv``                   phased decay, FKV-style [21]           ``O(I + log^2 n)``
``kv``                    ack-based contention resolution [33]   ``O(A-bar log n)``
``mac_backoff``           Algorithm 2 (symmetric MAC)            ``(1+d) e n + O(log^2 n)``
``round_robin``           Round-Robin-Withholding (Lemma 17)     ``n + m`` exact
``power_control``         capacity selection [32]                ``O(I log n)``
``single_hop``            trivial packet-routing scheduler       ``I`` exact
``oracle``                omniscient greedy (baseline)           model-dependent
========================  =====================================  =======================
"""

from repro.staticsched.base import (
    LazySlotHistory,
    LengthBound,
    LinkQueues,
    RunResult,
    StaticAlgorithm,
)
from repro.staticsched.kernel import SlotKernel, scalar_reference
from repro.staticsched.runloop import (
    BACKENDS,
    available_backends,
    default_backend,
    numba_available,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.staticsched.decay import DecayScheduler
from repro.staticsched.fkv import FkvScheduler
from repro.staticsched.hm import HmScheduler
from repro.staticsched.kv import KvScheduler
from repro.staticsched.mac_backoff import MacBackoffScheduler
from repro.staticsched.round_robin import RoundRobinScheduler
from repro.staticsched.power_control import PowerControlScheduler
from repro.staticsched.single_hop import SingleHopScheduler
from repro.staticsched.oracle import OracleScheduler
from repro.staticsched.max_weight import MaxWeightScheduler

__all__ = [
    "StaticAlgorithm",
    "RunResult",
    "LazySlotHistory",
    "LengthBound",
    "LinkQueues",
    "SlotKernel",
    "scalar_reference",
    "BACKENDS",
    "available_backends",
    "default_backend",
    "numba_available",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "DecayScheduler",
    "FkvScheduler",
    "HmScheduler",
    "KvScheduler",
    "MacBackoffScheduler",
    "RoundRobinScheduler",
    "PowerControlScheduler",
    "SingleHopScheduler",
    "OracleScheduler",
    "MaxWeightScheduler",
]
