"""A Tassiulas-Ephremides-style max-weight comparator.

The paper positions its protocol as a distributed, polynomial-time
approximation of the Tassiulas-Ephremides optimum: the (centralized,
generally intractable) policy that each slot serves a maximum-weight
feasible set, weights being queue lengths, and that is stable whenever
*any* policy is.

:class:`MaxWeightScheduler` implements that policy with the exact
maximum over feasible sets for small instances (branch-and-bound over
the model's success predicate) and a greedy weight-ordered fallback
beyond ``exact_limit`` busy links. As a :class:`StaticAlgorithm` it
slots into the same runners and protocols as everything else, giving
the benchmarks an "optimal-ish" throughput reference.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.interference.base import InterferenceModel
from repro.staticsched.base import (
    LengthBound,
    LinkQueues,
    RunResult,
    SlotRecord,
    StaticAlgorithm,
)
from repro.utils.rng import RngLike


class MaxWeightScheduler(StaticAlgorithm):
    """Serve a maximum-queue-weight feasible set every slot.

    Parameters
    ----------
    exact_limit:
        Maximum number of busy links for which the feasible-set search
        is exact; beyond it, greedy-by-weight (still maximal). The
        search cost is exponential in this limit.
    """

    name = "max-weight"

    def __init__(self, exact_limit: int = 12):
        if exact_limit < 1:
            raise SchedulingError(f"exact_limit must be >= 1, got {exact_limit}")
        self._exact_limit = int(exact_limit)

    def budget_for(self, measure: float, n: int) -> int:
        """Generous: one slot per request plus the measure."""
        return max(1, math.ceil(measure) + int(n))

    def network_bound(self, m: int) -> LengthBound:
        """Heuristic bound for protocol use: ``2 I + 1``.

        Max-weight has no closed-form whp length guarantee in general;
        this comparator bound is adequate for the benchmarks' purposes
        (it is what the protocol would *like* to be true; instability
        under it is informative, not a bug).
        """
        return LengthBound(
            multiplicative=lambda m_: 2.0,
            additive=lambda m_, n: 1.0,
            description="2 I + 1 [max-weight comparator heuristic]",
        )

    # ------------------------------------------------------------------

    def best_feasible_set(
        self, model: InterferenceModel, queues: LinkQueues
    ) -> List[int]:
        """The (approximately) maximum-weight feasible set of busy links."""
        busy = sorted(
            queues.busy_links(),
            key=lambda e: (-queues.queue_length(e), e),
        )
        weights = {e: queues.queue_length(e) for e in busy}
        if len(busy) <= self._exact_limit:
            _, best = self._search(model, busy, weights, [], 0)
            return best
        chosen: List[int] = []
        for link_id in busy:
            candidate = chosen + [link_id]
            if model.feasible_set(candidate):
                chosen = candidate
        return chosen

    def _search(
        self,
        model: InterferenceModel,
        remaining: List[int],
        weights,
        chosen: List[int],
        chosen_weight: int,
    ) -> Tuple[int, List[int]]:
        """Branch and bound over feasible subsets; returns (weight, set)."""
        if not remaining:
            return chosen_weight, list(chosen)
        head, tail = remaining[0], remaining[1:]
        best_weight, best_set = self._search(
            model, tail, weights, chosen, chosen_weight
        )
        with_head = chosen + [head]
        if model.feasible_set(with_head):
            weight, candidate = self._search(
                model, tail, weights, with_head, chosen_weight + weights[head]
            )
            if weight > best_weight:
                best_weight, best_set = weight, candidate
        return best_weight, best_set

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        queues = LinkQueues(requests, model.num_links)
        delivered: List[int] = []
        history: Optional[List[SlotRecord]] = [] if record_history else None
        slots = 0
        while slots < budget and queues.pending:
            transmitting = self.best_feasible_set(model, queues)
            self._transmit(model, queues, transmitting, delivered, history)
            slots += 1
        return self._finalise(queues, delivered, slots, history)


__all__ = ["MaxWeightScheduler"]
