"""The trivial packet-routing scheduler.

In a packet-routing network (``W`` = identity,
:class:`~repro.interference.packet_routing.PacketRoutingModel`) links
never interfere, so the obvious schedule is optimal: every slot, every
link with a backlog forwards one packet. The schedule length equals the
congestion — which *is* the interference measure under the identity
matrix — giving the exact bound ``f = 1``, ``g = 0``.

Plugged into the dynamic transformation this recovers the classical
adversarial-queueing guarantee (stable for every ``lambda < 1``), the
paper's Section-7 sanity check that the framework collapses to known
results in the degenerate model.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.interference.base import InterferenceModel
from repro.staticsched.base import LengthBound, RunResult, StaticAlgorithm
from repro.staticsched.kernel import make_run_state
from repro.staticsched.runloop import (
    SingleHopPolicy,
    resolve_backend,
    run_fused,
)
from repro.utils.rng import RngLike, ensure_rng


class SingleHopScheduler(StaticAlgorithm):
    """Forward one packet per busy link per slot; exact length = congestion."""

    name = "single-hop"

    def budget_for(self, measure: float, n: int) -> int:
        """The congestion itself (measure rounded up), at least 1."""
        return max(1, math.ceil(measure))

    def network_bound(self, m: int) -> LengthBound:
        """Exact: ``f = 1``, ``g = 0`` (represented with a 1-slot floor)."""
        return LengthBound(
            multiplicative=lambda m_: 1.0,
            additive=lambda m_, n: 1.0,
            description="I exact [trivial single-hop]",
        )

    def fused_policy(self) -> SingleHopPolicy:
        """A fresh fused-loop policy mirroring :meth:`run`'s dispatch
        (the batched fleet kernel builds its per-network tasks here)."""
        return SingleHopPolicy()

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        backend = resolve_backend()
        if backend in ("numpy", "numba"):
            return run_fused(
                self.fused_policy(),
                model, requests, budget, ensure_rng(rng), record_history,
                backend=backend,
            )
        kernel, queues, delivered, history = make_run_state(
            model, requests, record_history
        )
        slots = 0
        while slots < budget and kernel.pending:
            # Every busy link forwards: the all-transmit mask hits the
            # evaluators' incremental row-sum fast path.
            kernel.transmit(np.ones(kernel.size, dtype=bool))
            slots += 1
        return self._finalise(queues, delivered, slots, history)


__all__ = ["SingleHopScheduler"]
