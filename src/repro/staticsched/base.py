"""The static-algorithm interface and shared bookkeeping.

Requests
--------
A request set is a sequence of link ids — one entry per packet that must
cross that link once (single-hop view, which is all the dynamic protocol
ever asks for: one hop per packet per frame). Duplicates mean several
packets queued on the same link; requests are identified by their index
in the sequence so callers can map results back to packets.

Results
-------
:class:`RunResult` reports which request indices were served within the
slot budget, which remain, and how many slots were consumed (an
algorithm may finish early). ``history`` optionally records each slot's
attempted and successful link sets for schedule-feasibility tests.

Length bounds
-------------
:class:`LengthBound` captures the ``f(m) * I + g(m, n)`` schedule-length
form the Section-4 protocol needs to size frames: ``multiplicative`` is
``f`` (a function of the network size ``m``), ``additive`` is ``g``.
Raw algorithms whose factor depends on ``n`` (e.g. ``O(I log n)``)
expose their *post-transformation* bound via
:meth:`StaticAlgorithm.network_bound` only after wrapping with
Algorithm 1 (:mod:`repro.core.transform`); natively well-scaling
algorithms return one directly.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.interference.base import InterferenceModel
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class SlotRecord:
    """One slot of a run: which links attempted, which succeeded."""

    attempted: Tuple[int, ...]
    succeeded: Tuple[int, ...]


class LazySlotHistory(Sequence):
    """A slot history that materialises :class:`SlotRecord` lazily.

    Recording a run used to build one ``SlotRecord`` — two tuples of
    Python ints — per slot, which dominated history-recording runs.
    This container instead stores the raw per-slot numpy arrays the
    run loop already has in hand and only converts them to
    ``SlotRecord`` tuples on access (indexing, iteration, equality),
    i.e. in tests and analysis code, never in the hot loop.

    Two append forms cover the two run loops:

    * :meth:`append_ids` — attempted/succeeded link-id arrays
      (ascending), as gathered by the per-slot kernel path;
    * :meth:`append_mask` — the fused backend's zero-copy form: a
      reference to the (immutable-by-convention) busy array of the
      slot's compaction epoch, a private copy of the local attempt
      mask, and the slot's popped head-request array (``None`` when
      nothing succeeded). Succeeded link ids are recovered lazily as
      ``request_links[heads]`` — heads pop in ascending busy order, so
      the ids come out sorted exactly like the eager tuples did.

    Equality compares materialised records elementwise, so histories
    recorded by different backends (or plain ``List[SlotRecord]``
    histories from the legacy scalar loops) compare naturally;
    concatenation (``+``) materialises to a plain list, which keeps
    :meth:`RunResult.merge_after` working unchanged.
    """

    __slots__ = ("_attempted", "_succeeded", "_request_links")

    def __init__(self, request_links: Optional[np.ndarray] = None):
        # Per slot: entry in _attempted is None (idle slot), an int
        # array of link ids, or a (busy_ref, mask_copy) pair; entry in
        # _succeeded is None, an int array of link ids, or an array of
        # head request indices to be mapped through _request_links.
        self._attempted: List = []
        self._succeeded: List = []
        self._request_links = request_links

    # -- recording -----------------------------------------------------

    def append_empty(self) -> None:
        """Record an idle slot (no attempts, no successes)."""
        self._attempted.append(None)
        self._succeeded.append(None)

    def append_ids(
        self, attempted: np.ndarray, succeeded: np.ndarray
    ) -> None:
        """Record a slot from attempted/succeeded link-id arrays."""
        self._attempted.append(attempted)
        self._succeeded.append(("ids", succeeded))

    def append_mask(
        self,
        busy: np.ndarray,
        attempt_mask: np.ndarray,
        heads: Optional[np.ndarray],
    ) -> None:
        """Record a slot from the fused loop's working arrays.

        ``busy`` is kept by reference (compaction replaces, never
        mutates, the array), ``attempt_mask`` must be a private copy,
        ``heads`` are the popped request indices (``None`` if none).
        """
        self._attempted.append((busy, attempt_mask))
        self._succeeded.append(heads)

    def append_ids_heads(
        self, attempted: np.ndarray, heads: np.ndarray
    ) -> None:
        """Record a slot from attempted link ids plus popped heads.

        The compiled backend's form: succeeded link ids resolve lazily
        as ``request_links[heads]`` exactly like :meth:`append_mask`.
        """
        self._attempted.append(attempted)
        self._succeeded.append(heads if heads.size else None)

    # -- materialisation ----------------------------------------------

    def _record(self, index: int) -> SlotRecord:
        attempted = self._attempted[index]
        if attempted is None:
            return SlotRecord((), ())
        if isinstance(attempted, tuple):
            busy, mask = attempted
            attempted = busy[mask]
        succeeded = self._succeeded[index]
        if succeeded is None:
            succeeded_ids: Tuple[int, ...] = ()
        elif isinstance(succeeded, tuple):
            succeeded_ids = tuple(int(e) for e in succeeded[1])
        else:
            succeeded_ids = tuple(
                int(e) for e in self._request_links[succeeded]
            )
        return SlotRecord(
            tuple(int(e) for e in attempted), succeeded_ids
        )

    def __len__(self) -> int:
        return len(self._attempted)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._record(i) for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("history index out of range")
        return self._record(index)

    def __iter__(self):
        for i in range(len(self)):
            yield self._record(i)

    def __eq__(self, other) -> bool:
        if not isinstance(other, (Sequence, LazySlotHistory)):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(a == b for a, b in zip(self, other))

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __add__(self, other):
        if isinstance(other, (list, LazySlotHistory)):
            return list(self) + list(other)
        return NotImplemented

    def __radd__(self, other):
        if isinstance(other, list):
            return list(other) + list(self)
        return NotImplemented

    def __repr__(self) -> str:
        return f"LazySlotHistory({len(self)} slots)"


@dataclass
class RunResult:
    """Outcome of running a static algorithm under a slot budget."""

    delivered: List[int] = field(default_factory=list)
    remaining: List[int] = field(default_factory=list)
    slots_used: int = 0
    #: A sequence of :class:`SlotRecord` — a plain list from the
    #: legacy scalar loops, a :class:`LazySlotHistory` from the kernel
    #: and fused run-loop backends (records materialise on access).
    history: Optional[Sequence[SlotRecord]] = None

    @property
    def all_delivered(self) -> bool:
        """Whether every request was served."""
        return not self.remaining

    def merge_after(self, other: "RunResult") -> "RunResult":
        """Combine with a follow-up run executed on :attr:`remaining`.

        ``other``'s request indices must refer to the same original
        request sequence (the transformation re-runs on leftover
        indices, keeping identity).
        """
        history = None
        if self.history is not None and other.history is not None:
            history = self.history + other.history
        return RunResult(
            delivered=self.delivered + other.delivered,
            remaining=list(other.remaining),
            slots_used=self.slots_used + other.slots_used,
            history=history,
        )


@dataclass
class LengthBound:
    """Schedule length in the form ``f(m) * I + g(m, n)``."""

    multiplicative: Callable[[int], float]
    additive: Callable[[int, int], float]
    description: str = ""

    def f(self, m: int) -> float:
        """The multiplicative factor ``f(m)``."""
        return float(self.multiplicative(m))

    def g(self, m: int, n: int) -> float:
        """The additive term ``g(m, n)``."""
        return float(self.additive(m, n))

    def slots(self, m: int, measure: float, n: int) -> int:
        """Total budget ``ceil(f(m) * I + g(m, n))`` (at least 1)."""
        return max(1, math.ceil(self.f(m) * measure + self.g(m, n)))


class LinkQueues:
    """FIFO queues of request indices, one per link — array-native.

    The universal bookkeeping for slotted schedulers: requests are
    enqueued on their link; when a link transmits, the head request is
    in flight; on success it is popped.

    Storage is a CSR layout built with one stable argsort: ``_order``
    holds the request indices grouped by link (FIFO within each link —
    stable sort preserves arrival order), ``_starts`` the per-link
    group offsets, and ``_consumed`` how many of each link's requests
    have been served. Construction is O(n log n) of C-speed sort with
    no per-request Python loop (the old dict-of-deques enqueue loop
    dominated protocol-scale runs), a pop is O(1) index arithmetic,
    and the slot kernel pops a whole success set in one gather
    (:meth:`pop_heads`).
    """

    def __init__(self, requests: Sequence[int], num_links: int):
        raw = np.asarray(requests)
        if raw.ndim != 1:
            raise SchedulingError(
                f"requests must be a flat sequence of link ids, got shape "
                f"{raw.shape}"
            )
        # Range-check the values as given (before any integer cast, so
        # e.g. -0.9 is rejected rather than truncated to 0). Negated
        # in-range form so NaN — which fails both comparisons — is
        # rejected too.
        out_of_range = ~((raw >= 0) & (raw < num_links))
        if out_of_range.any():
            index = int(np.flatnonzero(out_of_range)[0])
            raise SchedulingError(
                f"request {index} references link {raw[index]}, outside "
                f"0..{num_links - 1}"
            )
        req = raw.astype(np.int64, copy=False)
        self._num_links = int(num_links)
        self._depths = np.bincount(req, minlength=num_links).astype(np.int64)
        self._order = np.argsort(req, kind="stable")
        self._starts = np.zeros(num_links + 1, dtype=np.int64)
        np.cumsum(
            self._depths, out=self._starts[1:]
        )
        self._consumed = np.zeros(num_links, dtype=np.int64)
        self._pending = int(req.size)

    @property
    def pending(self) -> int:
        """Total requests not yet served."""
        return self._pending

    def busy_links(self) -> List[int]:
        """Links with at least one pending request, sorted."""
        return np.flatnonzero(self._depths).tolist()

    def busy_array(self) -> np.ndarray:
        """Busy link ids as a sorted int64 array (fresh copy)."""
        return np.flatnonzero(self._depths)

    def depth_array(self) -> np.ndarray:
        """Per-link queue depths indexed by link id (fresh copy)."""
        return self._depths.copy()

    def depths_for(self, links: np.ndarray) -> np.ndarray:
        """Queue depths for the given link ids (fresh gathered copy)."""
        return self._depths[links]

    def queue_length(self, link_id: int) -> int:
        """Pending requests on one link (0 for unknown links)."""
        if not 0 <= link_id < self._num_links:
            return 0
        return int(self._depths[link_id])

    def head(self, link_id: int) -> int:
        """Request index at the head of a link's queue."""
        if not 0 <= link_id < self._num_links or self._depths[link_id] <= 0:
            raise SchedulingError(f"link {link_id} has no pending requests")
        return int(
            self._order[self._starts[link_id] + self._consumed[link_id]]
        )

    def pop(self, link_id: int) -> int:
        """Serve (remove and return) the head request of a link."""
        if not 0 <= link_id < self._num_links or self._depths[link_id] <= 0:
            raise SchedulingError(f"link {link_id} has no pending requests")
        index = self._order[self._starts[link_id] + self._consumed[link_id]]
        self._consumed[link_id] += 1
        self._depths[link_id] -= 1
        self._pending -= 1
        return int(index)

    def pop_heads(self, links: np.ndarray) -> np.ndarray:
        """Serve the head of every given link in one gather.

        ``links`` must be unique link ids, each with a pending request
        (the kernel passes a slot's successful busy links, which are
        both). Returns the request indices in the order of ``links``.
        """
        if links.size:
            if int(links.min()) < 0 or int(links.max()) >= self._num_links:
                bad = int(links.min()) if int(links.min()) < 0 else int(links.max())
                raise SchedulingError(
                    f"link {bad} has no pending requests"
                )
            if (self._depths[links] <= 0).any():
                bad = int(links[self._depths[links] <= 0][0])
                raise SchedulingError(f"link {bad} has no pending requests")
            if np.unique(links).size != links.size:
                # Fancy-index += applies once per unique link; a
                # duplicate would silently double-serve one head.
                raise SchedulingError(
                    "pop_heads requires unique link ids"
                )
        heads = self._order[self._starts[links] + self._consumed[links]]
        self._consumed[links] += 1
        self._depths[links] -= 1
        self._pending -= int(links.size)
        return heads

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The raw CSR layout ``(order, starts)`` — treat as read-only.

        ``order`` holds request indices grouped by link (FIFO within
        each group), ``starts`` the per-link group offsets. The fused
        run-loop backends pop heads straight off these arrays instead
        of going through :meth:`pop_heads`' per-call validation.
        """
        return self._order, self._starts

    def remaining_indices(self) -> List[int]:
        """All still-pending request indices, in link order then FIFO order."""
        out: List[int] = []
        for link_id in np.flatnonzero(self._depths).tolist():
            begin = self._starts[link_id] + self._consumed[link_id]
            end = self._starts[link_id + 1]
            out.extend(self._order[begin:end].tolist())
        return out


class StaticAlgorithm(ABC):
    """A slotted algorithm serving a fixed set of single-hop requests."""

    #: Human-readable name used in experiment tables.
    name: str = "static"

    @abstractmethod
    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        """Serve ``requests`` for at most ``budget`` slots."""

    @abstractmethod
    def budget_for(self, measure: float, n: int) -> int:
        """Slots this algorithm wants for measure ``measure``, ``n`` requests.

        Sized so that the run succeeds with high probability (the
        algorithm's advertised bound); the dynamic protocol treats
        requests left over after this budget as *failed*.
        """

    def network_bound(self, m: int) -> LengthBound:
        """The ``f(m) * I + g(m, n)`` bound, if the algorithm has one.

        Algorithms whose factor genuinely depends on ``n`` (the case
        Section 3 exists to fix) raise ``SchedulingError`` here; wrap
        them with :class:`repro.core.transform.TransformedAlgorithm`.
        """
        raise SchedulingError(
            f"{self.name} has no network-size length bound; apply the "
            "Section-3 transformation first"
        )

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the scheduler's configuration.

        Static algorithms are stateless between ``run()`` calls — all
        per-run state lives inside ``run()`` — so the snapshot is the
        constructor configuration plus the algorithm name. Checkpoints
        store it as a compatibility check: resuming a run under a
        scheduler built with different parameters would silently diverge
        from the uninterrupted run.
        """
        return {"name": self.name}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Verify ``state`` matches this scheduler's configuration.

        Raises :class:`repro.errors.ConfigurationError` on mismatch.
        """
        from repro.errors import ConfigurationError

        current = self.state_dict()
        if dict(state) != current:
            raise ConfigurationError(
                f"scheduler state mismatch: checkpoint was written by "
                f"{state!r} but this scheduler is {current!r}"
            )

    # ------------------------------------------------------------------
    # Shared slot loop
    # ------------------------------------------------------------------

    def _finalise(
        self,
        queues: LinkQueues,
        delivered: List[int],
        slots_used: int,
        history: Optional[List[SlotRecord]],
    ) -> RunResult:
        return RunResult(
            delivered=delivered,
            remaining=queues.remaining_indices(),
            slots_used=slots_used,
            history=history,
        )

    @staticmethod
    def _transmit(
        model: InterferenceModel,
        queues: LinkQueues,
        transmitting: Sequence[int],
        delivered: List[int],
        history: Optional[List[SlotRecord]],
    ) -> Set[int]:
        """Run one slot: evaluate the model, serve heads of successful links."""
        successes = model.successes(transmitting) if transmitting else set()
        for link_id in sorted(successes):
            delivered.append(queues.pop(link_id))
        if history is not None:
            history.append(
                SlotRecord(tuple(sorted(transmitting)), tuple(sorted(successes)))
            )
        return successes


__all__ = [
    "StaticAlgorithm",
    "RunResult",
    "SlotRecord",
    "LazySlotHistory",
    "LengthBound",
    "LinkQueues",
]
