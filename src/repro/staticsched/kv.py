"""Acknowledgement-based distributed contention resolution.

Reference [33] of the paper (Kesselheim & Voecking, "Distributed
contention resolution in wireless networks", DISC 2010) schedules ``n``
requests in ``O(A-bar * log n)`` slots whp, where ``A-bar`` is the
maximum average affectance — the algorithm behind Corollary 13
(monotone sub-linear power assignments, ``O(log^2 m)``-competitive
after transformation).

Mechanism reproduced here (the DISC'10 core loop): every pending
request maintains a personal transmission probability, starting at a
common low value. In each slot it transmits with its current
probability; on a *successful* transmission it leaves the system, and
— the distinctive ingredient — each request adapts multiplicatively
based only on its own acknowledgement feedback: unsuccessful attempts
halve the probability (back-off), long quiet stretches double it up to
the cap. This needs no knowledge of the measure, only of ``n`` (for the
initial probability and the budget), matching the distributed,
ack-based feedback model the paper requires of transformable
algorithms (Section 8).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.interference.base import InterferenceModel
from repro.staticsched.base import RunResult, StaticAlgorithm
from repro.staticsched.kernel import make_run_state
from repro.staticsched.runloop import KvPolicy, resolve_backend, run_fused
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class KvScheduler(StaticAlgorithm):
    """Ack-feedback contention resolution with multiplicative adaptation.

    Parameters
    ----------
    initial_probability:
        Starting per-request transmission probability (default 1/8).
    min_probability:
        Back-off floor.
    backoff:
        Multiplier applied after a failed attempt (default 1/2).
    recovery_slots:
        A request idle (not attempting) for this many consecutive slots
        doubles its probability, up to ``initial_probability``.
    budget_scale:
        Factor on the ``O(I log n)`` budget recommendation.
    """

    name = "kv"

    def __init__(
        self,
        initial_probability: float = 0.125,
        min_probability: float = 1e-4,
        backoff: float = 0.5,
        recovery_slots: int = 8,
        budget_scale: float = 24.0,
    ):
        if not 0 < initial_probability <= 1:
            raise SchedulingError(
                f"initial_probability must be in (0, 1], got {initial_probability}"
            )
        if not 0 < backoff < 1:
            raise SchedulingError(f"backoff must be in (0, 1), got {backoff}")
        self._p0 = initial_probability
        self._p_min = check_positive("min_probability", min_probability)
        self._backoff = backoff
        self._recovery_slots = max(1, int(recovery_slots))
        self._budget_scale = check_positive("budget_scale", budget_scale)

    def state_dict(self):
        return {
            "name": self.name,
            "initial_probability": self._p0,
            "min_probability": self._p_min,
            "backoff": self._backoff,
            "recovery_slots": self._recovery_slots,
            "budget_scale": self._budget_scale,
        }

    def budget_for(self, measure: float, n: int) -> int:
        """``O(I log n)`` with the adaptation's slack constant."""
        measure = max(measure, 1.0)
        return max(
            1, math.ceil(self._budget_scale * measure * math.log(n + 2))
        )

    def fused_policy(self) -> KvPolicy:
        """A fresh fused-loop policy mirroring :meth:`run`'s dispatch
        (the batched fleet kernel builds its per-network tasks here)."""
        return KvPolicy(
            self._p0, self._p_min, self._backoff, self._recovery_slots
        )

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        gen = ensure_rng(rng)
        backend = resolve_backend()
        if backend in ("numpy", "numba"):
            return run_fused(
                self.fused_policy(),
                model, requests, budget, gen, record_history,
                backend=backend,
            )
        kernel, queues, delivered, history = make_run_state(
            model, requests, record_history
        )

        # Per-link adaptive state (the head request's state; FIFO order
        # means each request inherits the link's learned probability,
        # which only helps convergence). Arrays aligned with kernel.busy.
        probability = np.full(kernel.size, self._p0)
        idle_streak = np.zeros(kernel.size, dtype=np.int64)

        slots = 0
        while slots < budget and kernel.pending:
            # One batched draw covers every busy link in id order — the
            # same stream as one scalar draw per link.
            attempt = gen.random(kernel.size) < probability
            idle_streak += 1
            idle_streak[attempt] = 0
            success = kernel.transmit(attempt)
            probability[success] = self._p0
            # successes are a subset of attempts, so XOR == attempt & ~success
            rebuffed = attempt ^ success
            probability[rebuffed] = np.maximum(
                self._p_min, probability[rebuffed] * self._backoff
            )
            recovered = idle_streak >= self._recovery_slots
            probability[recovered] = np.minimum(
                self._p0, probability[recovered] * 2.0
            )
            idle_streak[recovered] = 0
            if kernel.last_keep is not None:
                probability = probability[kernel.last_keep]
                idle_streak = idle_streak[kernel.last_keep]
            slots += 1
        return self._finalise(queues, delivered, slots, history)


__all__ = ["KvScheduler"]
