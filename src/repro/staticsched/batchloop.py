"""Batched fused run loop: many small networks in one slot engine.

:func:`~repro.staticsched.runloop.run_fused` advances *one* network's
slot loop; its per-slot cost on a small network (a dozen links) is
dominated by fixed numpy-call overhead, not arithmetic. A fleet of N
such networks pays that overhead N times per slot — and BENCH_p5
showed process-per-network cannot amortise it (each network is too
cheap to ship to a worker, and the bench container has one CPU).

This module runs N independent fused tasks through a shared *wave*
engine instead. The key observation is that for every fused policy the
per-link transmission thresholds are **frozen between events** (slots
in which some link attempts): decay/HM thresholds change only when a
queue drains, FKV's only at phase boundaries, KV's only on attempts or
idle-recovery. So a window of upcoming slots can be *scanned* with one
vectorised comparison over a padded ``(N, window, L_max)`` coin tensor
— ``coin < threshold`` is elementwise, so padding lanes (coins of 2.0)
can never fire and cross-network stacking cannot perturb any result —
and only the first event slot per network is stepped through the exact
per-slot engine. Skipped slots are retired in O(1): their coins were
drawn and consumed (the serial loop consumes ``k`` coins per slot no
matter what), their attempt sets are empty by construction, and the
policy bookkeeping they would have done (KV idle streaks, FKV phase
countdown) is applied in closed form.

Bit-exactness contract: every network's :class:`RunResult` — delivered
order, remaining order, slots used — *and* its generator's final state
are identical to an unbatched serial run. The per-slot body below is a
line-for-line copy of ``run_fused``'s (kept separate so the serial hot
loop stays untouched); coins come from the same
:class:`ChunkedUniforms` stream discipline, whose finalize() rewind
makes the generator's end state depend only on the number of values
handed out, not on chunk boundaries; and the scan horizons are chosen
so no policy recurrence can fire inside a skipped window (see
:func:`_scan_state`).

The driver consumes *step generators* (see :mod:`repro.core.steps`):
each network is a generator yielding
:class:`~repro.core.steps.AlgorithmCall` items, so one engine advances
whole dynamic-protocol simulations frame by frame, interleaving every
network's static-algorithm sub-runs inside shared waves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.staticsched.base import LinkQueues, RunResult
from repro.staticsched.runloop import (
    ChunkedUniforms,
    DecayPolicy,
    FkvPolicy,
    FusedPolicy,
    HmPolicy,
    KvPolicy,
    _make_fused_eval,
)

#: Maximum slots scanned per wave. The batched tasks draw their coins
#: in chunks of exactly this many slots (legal at any size: the
#: ChunkedUniforms discipline hands out the same stream values under
#: any chunking, and its finalize() rewind leaves the generator's end
#: state dependent only on the handed-out count) so a refill always
#: yields a full window and a wave never needs a mid-window refill.
#: Larger windows amortise the per-wave Python over more skipped
#: slots; 256 keeps the padded tensors small while making chunk
#: boundaries 4x rarer than the serial loop's 64-slot chunks.
WINDOW = 256

#: Horizon sentinel for policies whose thresholds never drift between
#: events (decay, HM).
_UNLIMITED = 1 << 30


class FusedTask:
    """One network's fused run, advanced slot by slot or in waves.

    The constructor replicates ``run_fused``'s setup exactly;
    :meth:`_step` replicates its slot body; :meth:`finish` replicates
    its teardown (including the ChunkedUniforms rewind). History
    recording is unsupported — the batch layer routes
    ``record_history`` runs to the serial path.
    """

    __slots__ = (
        "policy", "budget", "order", "starts", "busy", "depths",
        "head_ptr", "pending", "evaluator", "uses_rng", "chunk",
        "ubuf", "ucursor", "delivered_parts", "slots", "row",
        "thr_stale", "_no_ok",
    )

    def __init__(self, policy: FusedPolicy, model, requests, budget: int,
                 gen: np.random.Generator):
        # The schedulers validate before dispatching to run_fused; the
        # batched path intercepts earlier, so validate here.
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        self.policy = policy
        self.budget = budget
        queues = LinkQueues(requests, model.num_links)
        self.order, self.starts = queues.csr_arrays()
        self.busy = queues.busy_array()
        self.depths = queues.depths_for(self.busy)
        self.head_ptr = self.starts[self.busy].copy()
        self.pending = queues.pending
        policy.bind(model, requests, self.busy, self.depths)
        self.evaluator = _make_fused_eval(model, self.busy)
        self.uses_rng = policy.uses_rng
        self.chunk = (
            ChunkedUniforms(gen, chunk_slots=WINDOW)
            if self.uses_rng else None
        )
        self.ubuf = self.chunk._buf if self.chunk is not None else None
        self.ucursor = 0
        self.delivered_parts: List[np.ndarray] = []
        self.slots = 0
        # Wave-engine bookkeeping: the driver assigns each parked task
        # a row in its padded tensors; the cached threshold row must be
        # rewritten after any stepped slot (policy state may change).
        self.row = -1
        self.thr_stale = True
        self._no_ok = np.empty(0, dtype=bool)

    @property
    def is_active(self) -> bool:
        return self.slots < self.budget and self.pending > 0

    # -- coins ---------------------------------------------------------

    def coins_block(self, w: int) -> Tuple[int, np.ndarray]:
        """Up to ``w`` slots of coins as an unconsumed view.

        Returns ``(w_eff, view)`` where ``w_eff <= w`` is capped to the
        full slots the buffer holds. Refills only when less than one
        slot remains — the same trigger condition as the serial take —
        which preserves ChunkedUniforms' finalize invariant: the first
        consumption after a refill (at least one slot, ``k`` coins)
        always exceeds the sub-``k`` leftover, so the rewind replays a
        positive count and the generator's end state is exactly
        "handed-out values" deep, as in a serial run.
        """
        k = self.busy.size
        avail = (self.ubuf.size - self.ucursor) // k
        if avail < 1:
            self.chunk._cursor = self.ucursor
            self.chunk.refill(k)
            self.ubuf = self.chunk._buf
            self.ucursor = 0
            avail = self.ubuf.size // k
        w = min(w, avail)
        return w, self.ubuf[self.ucursor:self.ucursor + w * k]

    # -- advancing -----------------------------------------------------

    def skip(self, s: int) -> None:
        """Retire ``s`` event-free slots in O(1).

        Consumes their coins and applies the closed-form policy
        bookkeeping; safe only within a :func:`_scan_state` horizon
        (no attempts, hence no queue/evaluator/probability changes,
        and no KV recovery or FKV phase boundary inside the window).
        """
        n = s * self.busy.size
        self.ucursor += n
        self.chunk._consumed += n
        policy = self.policy
        kind = type(policy)
        if kind is KvPolicy:
            policy.idle += s
        elif kind is FkvPolicy:
            policy.phase_left -= s
        self.slots += s

    def step_event(self) -> None:
        """Run one slot through the exact engine (coins pre-scanned)."""
        k = self.busy.size
        u = self.ubuf[self.ucursor:self.ucursor + k]
        self.ucursor += k
        self.chunk._consumed += k
        self._step(u)

    def step_serial(self) -> None:
        """One slot through the exact engine, drawing its own coins."""
        if self.uses_rng:
            k = self.busy.size
            nxt = self.ucursor + k
            if nxt > self.ubuf.size:
                self.chunk._cursor = self.ucursor
                u = self.chunk.take(k)
                self.ubuf = self.chunk._buf
                self.ucursor = self.chunk._cursor
            else:
                u = self.ubuf[self.ucursor:nxt]
                self.ucursor = nxt
                self.chunk._consumed += k
            self._step(u)
        else:
            self._step(None)

    def _step(self, u: Optional[np.ndarray]) -> None:
        # Line-for-line the run_fused slot body (history-free).
        policy = self.policy
        attempt, att_idx = policy.attempt(u, self.depths)
        keep = None
        if att_idx.size:
            ok = self.evaluator.evaluate(attempt, att_idx)
            if ok.any():
                s_idx = att_idx[ok]
                hp = self.head_ptr.take(s_idx)
                heads = self.order.take(hp)
                self.delivered_parts.append(heads)
                self.head_ptr[s_idx] = hp + 1
                served = self.depths.take(s_idx) - 1
                self.depths[s_idx] = served
                self.pending -= heads.size
                if not served.all():
                    keep = self.depths > 0
        else:
            ok = self._no_ok
        policy.update(att_idx, ok)
        if keep is not None:
            self.busy = self.busy[keep]
            self.depths = self.depths[keep]
            self.head_ptr = self.head_ptr[keep]
            self.evaluator.drop(keep)
            policy.compact(keep)
        self.slots += 1
        self.thr_stale = True

    def finish(self) -> RunResult:
        """Teardown: rewind coin overdraw, assemble the RunResult."""
        if self.chunk is not None:
            self.chunk._cursor = self.ucursor
            self.chunk.finalize()
            self.ubuf = self.chunk._buf
            self.ucursor = 0
        if self.delivered_parts:
            delivered = np.concatenate(self.delivered_parts).tolist()
        else:
            delivered = []
        remaining: List[int] = []
        for i in range(self.busy.size):
            remaining.extend(
                self.order[self.head_ptr[i]:self.starts[self.busy[i] + 1]]
                .tolist()
            )
        return RunResult(
            delivered=delivered,
            remaining=remaining,
            slots_used=self.slots,
            history=None,
        )


def _scan_state(policy: FusedPolicy, depths: np.ndarray):
    """``(thresholds, horizon, changed)`` for scanning at frozen state.

    ``thresholds`` is the per-link transmission threshold array the
    next ``horizon`` slots would all use (None: the policy cannot be
    scanned — step it per slot), and ``changed`` reports whether this
    call recomputed them (the driver caches threshold rows and only
    rewrites one when it changed or its task stepped a slot).
    Horizons guarantee that *skipped*
    (attempt-free) slots inside the window are complete no-ops for the
    policy beyond the closed-form bookkeeping in :meth:`FusedTask.skip`:

    * KV: attempt-free slots only increment idle streaks, but idle
      recovery fires in ``update`` once a streak reaches
      ``recovery_slots``, doubling probabilities — so at most
      ``recovery_slots - 1 - max(idle)`` slots can pass without any
      streak reaching the threshold. The event slot itself runs the
      real update, which applies any recovery exactly.
    * FKV: thresholds change only at phase boundaries; after advancing
      a just-expired phase (exactly what the serial attempt would do on
      its next slot), ``phase_left`` slots remain in the phase.
    * decay/HM: thresholds depend only on queue depths / the busy-set
      contention, which only change on successful deliveries — and a
      skipped slot has no attempts at all. Unlimited horizon.
    * single-hop (and unknown policies): no coins / no frozen
      threshold — per-slot path.

    Threshold refreshes write through the policy's own caches with the
    policy's own ufunc sequence (and clear its dirty flags), so the
    event slot's real ``attempt`` reuses bit-identical values exactly
    like a serial slot following a cached refresh.
    """
    kind = type(policy)
    if kind is KvPolicy:
        # KV's probability array is updated in place by events, which
        # already mark the task's cached row stale — never "changed"
        # from the scan's point of view.
        horizon = policy.recovery_slots - 1 - int(policy.idle.max())
        return policy.probability, horizon, False
    if kind is DecayPolicy:
        lp = policy._lp[:policy._size]
        changed = policy._dirty
        if changed:
            np.power(policy.complement, depths, out=lp)
            np.subtract(1.0, lp, out=lp)
            policy._dirty = False
        return lp, _UNLIMITED, changed
    if kind is FkvPolicy:
        changed = policy.phase_left == 0
        if changed:
            policy._advance_phase()
        lp = policy._lp[:policy._size]
        if policy._dirty:
            changed = True
            np.power(policy.complement, depths, out=lp)
            np.subtract(1.0, lp, out=lp)
            policy._dirty = False
        return lp, policy.phase_left, changed
    if kind is HmPolicy:
        changed = policy._p is None
        if changed:
            policy._p = np.minimum(
                1.0, policy.chi / np.maximum(policy.contention, 1.0)
            )
        return policy._p, _UNLIMITED, changed
    return None, 0, False


class _StreamDriver:
    """Advance N step generators, pooling their fused tasks in waves.

    The driver owns two padded matrices reused across waves, one
    persistent row per parked task:

    * ``_limits (rows, WINDOW * lanes)`` — each network's per-link
      thresholds tiled across the scan window, so a window of coins
      compares against it with a single flat elementwise ``<``. Rows
      are cached: rewritten only when the task stepped a slot or the
      policy reports recomputed thresholds, so skip-only waves touch
      no threshold data.
    * ``_hits`` — boolean scratch of the same shape for the compare
      output.

    Coins are never copied: each task's compare runs directly on the
    unconsumed view of its own chunk buffer, sliced to exactly the
    ``w * k`` coins the serial loop would consume next (the active
    mask — pad lanes beyond a network's live links are simply never
    part of the slice). The comparison is elementwise, so pooling
    networks in one engine cannot perturb any network's outcome.
    """

    def __init__(self, streams):
        self.streams = list(streams)
        self.results: List = [None] * len(self.streams)
        self.tasks: Dict[int, FusedTask] = {}
        self._free_rows: List[int] = []
        self._rows_cap = 0
        self._lanes_cap = 0
        self._limits: Optional[np.ndarray] = None
        self._hits: Optional[np.ndarray] = None
        self._order: List[Tuple[int, FusedTask]] = []
        self._order_stale = True

    def _park(self, i: int, task: FusedTask) -> None:
        """Give ``task`` a matrix row and add it to the wave pool."""
        task.row = (
            self._free_rows.pop() if self._free_rows
            else len(self.tasks) + len(self._free_rows)
        )
        self.tasks[i] = task
        self._order_stale = True
        k = task.busy.size
        if task.row >= self._rows_cap or k > self._lanes_cap:
            self._grow(task.row + 1, k)

    def _grow(self, rows: int, lanes: int) -> None:
        self._rows_cap = max(self._rows_cap, rows, len(self.streams))
        self._lanes_cap = max(self._lanes_cap * 2, lanes, 8)
        shape = (self._rows_cap, WINDOW * self._lanes_cap)
        self._limits = np.empty(shape)
        self._hits = np.empty(shape, dtype=bool)
        for task in self.tasks.values():
            task.thr_stale = True

    def prime(self, i: int) -> None:
        self._drive(i, None, start=True)

    def retire(self, i: int) -> None:
        task = self.tasks.pop(i)
        self._order_stale = True
        self._free_rows.append(task.row)
        self._drive(i, task.finish())

    def _drive(self, i: int, value, start: bool = False) -> None:
        """Push a result into stream ``i``; park its next fused task.

        Calls the stream cannot batch (no fused policy, or history
        recording) are executed synchronously in place, as are tasks
        that are born finished (zero budget / zero pending) — the loop
        only parks when there is real slot work to pool.
        """
        stream = self.streams[i]
        try:
            call = next(stream) if start else stream.send(value)
            while True:
                fused = getattr(call.algorithm, "fused_policy", None)
                if fused is None or call.record_history:
                    call = stream.send(call.execute())
                    continue
                task = FusedTask(
                    fused(), call.model, call.requests, call.budget,
                    call.rng,
                )
                if task.is_active:
                    self._park(i, task)
                    return
                call = stream.send(task.finish())
        except StopIteration as stop:
            self.results[i] = stop.value

    def run(self) -> List:
        for i in range(len(self.streams)):
            self.prime(i)
        while self.tasks:
            self._wave()
        return self.results

    def _wave(self) -> None:
        # Iteration order is sorted for determinism of any shared
        # structures (each network's own stream is deterministic
        # regardless — tasks never share state). A retire below can
        # park a replacement task (possibly growing the matrices); the
        # buffers are re-read per task, and _grow marks every cached
        # row stale, so mid-wave growth stays consistent.
        if self._order_stale:
            self._order = sorted(self.tasks.items())
            self._order_stale = False
        for i, task in self._order:
            if not task.uses_rng:
                # Coin-free tasks need no scanning and cannot perturb
                # anyone (no stream): run them straight to completion.
                while task.is_active:
                    task.step_serial()
                self.retire(i)
                continue
            thresholds, horizon, changed = _scan_state(
                task.policy, task.depths
            )
            w = task.budget - task.slots
            if horizon < w:
                w = horizon
            if thresholds is None or w < 1:
                task.step_serial()
                if not task.is_active:
                    self.retire(i)
                continue
            if w > WINDOW:
                w = WINDOW
            w, block = task.coins_block(w)
            k = task.busy.size
            row = task.row
            n = w * k
            if changed or task.thr_stale:
                # Retile this network's per-link thresholds across the
                # window (one broadcast write; lanes beyond w * k are
                # never read, so a shrunken busy set needs no re-pad).
                self._limits[row, :WINDOW * k].reshape(
                    WINDOW, k
                )[:] = thresholds
                task.thr_stale = False
            hits = np.less(
                block, self._limits[row, :n], out=self._hits[row, :n]
            )
            first = int(hits.argmax())
            if hits[first]:
                offset = first // k
                if offset:
                    task.skip(offset)
                task.step_event()
            else:
                task.skip(w)
            if not task.is_active:
                self.retire(i)


def run_batched_streams(streams) -> List:
    """Drive step generators to completion through the wave engine.

    Each stream yields :class:`~repro.core.steps.AlgorithmCall` items
    and receives each call's :class:`RunResult` back; its return value
    becomes the corresponding entry of the returned list. Every
    result — and every stream's RNG end state — is bit-identical to
    driving that stream alone with
    :func:`~repro.core.steps.drive_steps`.
    """
    return _StreamDriver(streams).run()


__all__ = [
    "FusedTask",
    "WINDOW",
    "run_batched_streams",
]
