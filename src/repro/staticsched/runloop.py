"""Pluggable run-loop backends for the static slot loop.

The P1 slot kernel (:mod:`repro.staticsched.kernel`) vectorised the
per-slot work, but left a fixed floor of ~40 numpy dispatches per slot
plus per-slot Python bookkeeping (one ``Generator.random`` call per
slot, eager ``SlotRecord`` tuples, validated ``pop_heads``). This
module turns the slot loop into a *backend* choice:

``kernel``
    The P1 path: one :class:`~repro.staticsched.kernel.SlotKernel`
    step per slot with the model's cached batch evaluator. Kept as
    the benchmark baseline and as the fallback semantics.
``scalar``
    The kernel path pinned to one scalar ``successes()`` call per
    slot — the ground-truth reference every other backend must replay
    bit-for-bit. ``kernel.scalar_reference()`` forces this backend and
    *wins ties* against any other selection, so verification code can
    always trust it.
``numpy``
    The fused pure-numpy backend (:func:`run_fused`): Bernoulli coins
    pre-drawn in ~64-slot chunks from the same PCG64 stream
    (bit-identical to per-slot draws, with the generator rewound to
    the exact per-slot position at run end), sparse attempter-set
    bookkeeping (full-length work only where the busy set genuinely
    changes), head pops straight off the ``LinkQueues`` CSR arrays,
    lazy array-backed history, and inline evaluators for the
    affectance and conflict models.
``numba``
    Optional compiled backend (:mod:`repro.staticsched._runloop_numba`):
    run-to-completion JIT loops for the kv / decay / fkv / hm /
    single-hop recurrences over the affectance, conflict and SINR
    gain-table evaluators (hm gated on a bit-exact pairwise-sum
    self-check; ``python -m repro backends`` prints the live matrix). Detected
    at import; when numba is absent — or the (scheduler, model) pair
    is outside the compiled set — it falls back *silently* to the
    fused numpy backend.
``auto``
    ``numba`` when available, else ``numpy``. The default.

Every backend consumes the caller's generator stream exactly like the
scalar loop (one uniform per busy link per slot, none on idle
schedulers), so a run replays identically across backends from one
seed — ``tests/test_kernel_parity.py`` pins ``RunResult`` equality for
every backend × scheduler × model combination.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.interference.base import InterferenceModel
from repro.interference.conflict import ConflictGraphModel
from repro.interference.matrix_model import AffectanceThresholdModel
from repro.staticsched.base import LazySlotHistory, LinkQueues, RunResult

#: User-facing backend names (the CLI's ``--backend`` choices).
BACKENDS = ("auto", "numpy", "numba", "scalar")
#: All accepted names; ``kernel`` (the P1 per-slot path) is kept for
#: benchmarks and parity tests but is not a CLI choice.
_ALL_BACKENDS = BACKENDS + ("kernel",)

_default_backend = "auto"
#: Stack of nested ``use_backend`` overrides; the innermost wins...
_override_stack: List[str] = []
#: ...except ``scalar``, which is sticky: any enclosing scalar request
#: (``scalar_reference()`` included) pins the resolution to scalar.
_scalar_depth = 0


def numba_available() -> bool:
    """Whether the compiled backend can be used in this process."""
    try:
        from repro.staticsched import _runloop_numba

        return _runloop_numba.NUMBA_AVAILABLE
    except Exception:  # pragma: no cover - defensive import guard
        return False


def _check_backend(name: str) -> str:
    if name not in _ALL_BACKENDS:
        raise ConfigurationError(
            f"unknown run-loop backend '{name}'; choose from "
            f"{', '.join(_ALL_BACKENDS)}"
        )
    return name


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend (``auto`` on startup)."""
    global _default_backend
    _default_backend = _check_backend(name)


def default_backend() -> str:
    """The process-wide default backend name (possibly ``auto``)."""
    return _default_backend


@contextmanager
def use_backend(name: str):
    """Run the enclosed code with ``name`` as the selected backend.

    Nested uses stack (innermost wins), with one exception: a
    ``scalar`` selection anywhere on the stack pins the resolution to
    the scalar reference — verification contexts must not be
    overridden from below.
    """
    global _scalar_depth
    _check_backend(name)
    _override_stack.append(name)
    if name == "scalar":
        _scalar_depth += 1
    try:
        yield
    finally:
        _override_stack.pop()
        if name == "scalar":
            _scalar_depth -= 1


def scalar_forced() -> bool:
    """Whether a scalar-reference context is active (wins all ties)."""
    return _scalar_depth > 0


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete backend.

    Resolution order: an active scalar-reference context beats
    everything; then ``name`` if given; then the innermost
    ``use_backend`` override; then the process default. ``auto``
    resolves to ``numba`` when importable, else ``numpy``; a ``numba``
    request without numba installed falls back silently to ``numpy``.
    """
    if _scalar_depth > 0:
        return "scalar"
    if name is None:
        name = _override_stack[-1] if _override_stack else _default_backend
    else:
        _check_backend(name)
    if name == "auto":
        name = "numba" if numba_available() else "numpy"
    if name == "numba" and not numba_available():
        return "numpy"
    return name


def available_backends() -> Tuple[str, ...]:
    """The concrete backends runnable in this process."""
    concrete = ["scalar", "kernel", "numpy"]
    if numba_available():
        concrete.append("numba")
    return tuple(concrete)


# ----------------------------------------------------------------------
# Chunked uniform draws
# ----------------------------------------------------------------------


class ChunkedUniforms:
    """Pre-draw uniforms in chunks, bit-identical to per-slot draws.

    numpy generators fill ``random(n)`` from the PCG64 stream exactly
    like ``n`` successive smaller draws, so any re-chunking of the
    draw sequence yields the same values — :meth:`take` hands out the
    next ``k`` stream values whatever the chunk boundaries were.

    The only observable difference a chunk could introduce is
    *overdraw*: at run end the buffer may hold values the per-slot
    loop would never have drawn, leaving the caller's generator too
    far ahead (the dynamic protocol keeps using the same generator for
    the clean-up lottery and later frames). :meth:`finalize` repairs
    this exactly: the bit-generator state is snapshotted before each
    refill, and an under-consumed final chunk rewinds to the snapshot
    and re-draws precisely the consumed count, leaving the generator
    in the same state as per-slot draws would have.
    """

    __slots__ = ("_gen", "_chunk_slots", "_buf", "_cursor", "_state",
                 "_consumed")

    def __init__(self, gen: np.random.Generator, chunk_slots: int = 64):
        self._gen = gen
        self._chunk_slots = max(1, int(chunk_slots))
        self._buf = np.empty(0)
        self._cursor = 0
        self._state = None
        self._consumed = 0

    def refill(self, k: int) -> np.ndarray:
        """Splice the unconsumed tail with a fresh chunk (no consume).

        Resets the cursor to 0 and returns the new buffer; callers
        that consume straight off the buffer (the compiled backend)
        must keep :attr:`_cursor`/:attr:`_consumed` in sync so
        :meth:`finalize` can rewind exactly.
        """
        leftover = self._buf[self._cursor:]
        # Snapshot *before* drawing: everything taken after this
        # point can be replayed from here by finalize().
        self._state = self._gen.bit_generator.state
        fresh = self._gen.random(
            max(self._chunk_slots * k, k - leftover.size)
        )
        if leftover.size:
            self._buf = np.concatenate([leftover, fresh])
        else:
            self._buf = fresh
        self._consumed = -int(leftover.size)
        self._cursor = 0
        return self._buf

    def take(self, k: int) -> np.ndarray:
        """The next ``k`` uniforms from the stream (a buffer view)."""
        if self._cursor + k > self._buf.size:
            self.refill(k)
        cursor = self._cursor
        out = self._buf[cursor:cursor + k]
        self._cursor = cursor + k
        self._consumed += k
        return out

    def finalize(self) -> None:
        """Rewind overdraw so the generator matches per-slot draws."""
        if self._state is not None and self._cursor < self._buf.size:
            # A refill is only ever triggered by a take that then
            # consumes past the leftover, so _consumed > 0 here.
            self._gen.bit_generator.state = self._state
            if self._consumed > 0:
                self._gen.random(self._consumed)
        self._buf = np.empty(0)
        self._cursor = 0
        self._state = None


# ----------------------------------------------------------------------
# Fused slot policies (one per kernel scheduler)
# ----------------------------------------------------------------------


class FusedPolicy:
    """Per-scheduler state hooks for the fused run loop.

    The engine owns the busy set, queue depths, delivery and history;
    a policy owns the scheduler's adaptive state and answers one
    question per slot — who transmits — via :meth:`attempt`, then
    observes the outcome via :meth:`update` (called every slot, in
    *pre-compaction* indexing) and shrinks its arrays in
    :meth:`compact`. All hooks must reproduce the scheduler's kernel
    loop arithmetic exactly: same operations on the same values, so a
    fused run replays the kernel run bit-for-bit.

    The exchange format is sparse: :meth:`attempt` returns the local
    transmit mask *and* the attempter index array, and the outcome
    comes back as ``ok`` — a boolean verdict per attempter — so
    adaptive updates touch O(attempters), not O(busy), elements.
    """

    #: Policy identifier, used by the numba backend to pick a
    #: compiled recurrence ("kv", "decay", "fkv", "hm", "single-hop").
    kind: str = ""
    #: Whether the policy consumes one uniform per busy link per slot.
    uses_rng: bool = True

    def bind(self, model, requests, busy, depths) -> None:
        """Allocate per-run state for the initial busy set."""

    def attempt(self, u: Optional[np.ndarray], depths: np.ndarray):
        """Return ``(mask, att_idx)``: the local transmit mask (a
        reusable buffer) and the attempters' local indices."""
        raise NotImplementedError

    def update(self, att_idx: np.ndarray, ok: np.ndarray) -> None:
        """Apply the post-slot recurrence (pre-compaction indexing)."""

    def compact(self, keep: np.ndarray) -> None:
        """Shrink state to the surviving busy links."""


class KvPolicy(FusedPolicy):
    """Ack-feedback multiplicative adaptation (KV / DISC'10)."""

    kind = "kv"

    def __init__(self, p0: float, p_min: float, backoff: float,
                 recovery_slots: int):
        self.p0 = p0
        self.p_min = p_min
        self.backoff = backoff
        self.recovery_slots = recovery_slots

    def bind(self, model, requests, busy, depths) -> None:
        k = busy.size
        self.probability = np.full(k, self.p0)
        self.idle = np.zeros(k, dtype=np.int64)
        self._att = np.empty(k, dtype=bool)
        self._rec = np.empty(k, dtype=bool)
        self._f1 = np.empty(k)

    def attempt(self, u, depths):
        k = self.probability.size
        mask = np.less(u, self.probability, out=self._att[:k])
        att_idx = mask.nonzero()[0]
        self.idle += 1
        if att_idx.size:
            self.idle[att_idx] = 0
        return mask, att_idx

    def update(self, att_idx, ok):
        # Identical arithmetic to the kernel loop, on the attempter
        # subset only: successes reset to p0, failures back off with
        # the p_min clamp — the values match the full-array gather
        # updates element for element.
        p = self.probability
        if att_idx.size:
            backed = np.maximum(
                p[att_idx] * self.backoff, self.p_min
            )
            p[att_idx] = np.where(ok, self.p0, backed)
        k = p.size
        recovered = np.greater_equal(
            self.idle, self.recovery_slots, out=self._rec[:k]
        )
        # Recovered links never attempted this slot (their idle streak
        # is non-zero), so their probability is untouched above and
        # the full-length doubled/clamped copy-back reproduces the
        # reference's subset update exactly.
        doubled = np.multiply(p, 2.0, out=self._f1[:k])
        np.minimum(doubled, self.p0, out=doubled)
        np.copyto(p, doubled, where=recovered)
        np.copyto(self.idle, 0, where=recovered)

    def compact(self, keep):
        self.probability = self.probability[keep]
        self.idle = self.idle[keep]


class DecayPolicy(FusedPolicy):
    """Non-adaptive ``1/(cI)`` transmission (paper Theorem 19)."""

    kind = "decay"

    def __init__(self, probability_scale: float, measure_floor: float):
        self.probability_scale = probability_scale
        self.measure_floor = measure_floor

    def bind(self, model, requests, busy, depths) -> None:
        measure = max(
            model.interference_measure(list(requests)), self.measure_floor
        )
        self.probability = min(
            1.0, 1.0 / (self.probability_scale * measure)
        )
        self.complement = 1.0 - self.probability
        k = busy.size
        self._lp = np.empty(k)
        self._att = np.empty(k, dtype=bool)
        self._size = k
        self._dirty = True

    def attempt(self, u, depths):
        k = self._size
        lp = self._lp[:k]
        if self._dirty:
            # Same ufunc as the kernel loop's `1 - complement**depths`
            # — recomputed only when depths changed, with identical
            # inputs hence identical bits.
            np.power(self.complement, depths, out=lp)
            np.subtract(1.0, lp, out=lp)
            self._dirty = False
        mask = np.less(u, lp, out=self._att[:k])
        return mask, mask.nonzero()[0]

    def update(self, att_idx, ok):
        if ok.size and ok.any():
            self._dirty = True

    def compact(self, keep):
        self._size = int(np.count_nonzero(keep))
        self._dirty = True


class FkvPolicy(FusedPolicy):
    """Phased decay (FKV, TCS 2011): geometric phase schedule."""

    kind = "fkv"

    def __init__(self, probability_scale: float, phase_scale: float):
        self.probability_scale = probability_scale
        self.phase_scale = phase_scale

    def bind(self, model, requests, busy, depths) -> None:
        import math

        requests = list(requests)
        self._n = max(1, len(requests))
        self._log_n = math.log(self._n + 2)
        self._measure = max(model.interference_measure(requests), 1.0)
        self.phase = -1
        self.phase_left = 0
        k = busy.size
        self._lp = np.empty(k)
        self._att = np.empty(k, dtype=bool)
        self._size = k
        self._dirty = True

    def _advance_phase(self) -> None:
        import math

        self.phase += 1
        phase_measure = max(self._measure / 2.0 ** self.phase, 1.0)
        self.probability = min(
            0.25, 1.0 / (self.probability_scale * phase_measure)
        )
        self.complement = 1.0 - self.probability
        self.phase_left = max(
            1,
            math.ceil(
                self.phase_scale
                * self.probability_scale
                * max(phase_measure, self._log_n)
            ),
        )
        self._dirty = True

    def attempt(self, u, depths):
        if self.phase_left == 0:
            self._advance_phase()
        self.phase_left -= 1
        k = self._size
        lp = self._lp[:k]
        if self._dirty:
            np.power(self.complement, depths, out=lp)
            np.subtract(1.0, lp, out=lp)
            self._dirty = False
        mask = np.less(u, lp, out=self._att[:k])
        return mask, mask.nonzero()[0]

    def update(self, att_idx, ok):
        if ok.size and ok.any():
            self._dirty = True

    def compact(self, keep):
        self._size = int(np.count_nonzero(keep))
        self._dirty = True


class HmPolicy(FusedPolicy):
    """Contention-adaptive ``chi / I_busy`` transmission (HM-style)."""

    kind = "hm"

    def __init__(self, chi: float):
        self.chi = chi

    def bind(self, model, requests, busy, depths) -> None:
        self._sub = model.weight_matrix()[np.ix_(busy, busy)]
        self.contention = self._sub.sum(axis=1)
        self._att = np.empty(busy.size, dtype=bool)
        self._p = None

    def attempt(self, u, depths):
        if self._p is None:
            # Exactly the kernel loop's per-slot expression; cached
            # because contention only changes on compaction.
            self._p = np.minimum(
                1.0, self.chi / np.maximum(self.contention, 1.0)
            )
        mask = np.less(u, self._p, out=self._att[:self._p.size])
        return mask, mask.nonzero()[0]

    def compact(self, keep):
        gone = ~keep
        self.contention = (
            self.contention[keep]
            - self._sub[np.ix_(keep, gone)].sum(axis=1)
        )
        self._sub = self._sub[np.ix_(keep, keep)]
        self._p = None


class SingleHopPolicy(FusedPolicy):
    """Every busy link transmits (the trivial packet-routing rule)."""

    kind = "single-hop"
    uses_rng = False

    def bind(self, model, requests, busy, depths) -> None:
        self._ones = np.ones(busy.size, dtype=bool)
        self._ones.setflags(write=False)
        self._arange = np.arange(busy.size)
        self._size = busy.size

    def attempt(self, u, depths):
        k = self._size
        return self._ones[:k], self._arange[:k]

    def compact(self, keep):
        self._size = int(np.count_nonzero(keep))


# ----------------------------------------------------------------------
# Fused success evaluators
# ----------------------------------------------------------------------


class _FusedEval:
    """Per-slot success evaluation inside the fused loop."""

    def evaluate(self, attempt: np.ndarray, att_idx: np.ndarray):
        """The verdict per attempter (aligned with ``att_idx``).

        ``att_idx`` is non-empty; the result may be a reusable buffer
        valid until the next call.
        """
        raise NotImplementedError

    def drop(self, keep: np.ndarray) -> None:
        """Shrink cached state to the surviving busy links."""


class _AffectanceFusedEval(_FusedEval):
    """Inline affectance criterion on the frozen busy-set submatrix.

    The generic slot gathers the transmitter submatrix with one flat
    ``take`` and row-sums it with the same pairwise reduction the
    scalar reference uses (identical contents, identical routine ⇒
    identical bits — no guard band needed). The all-transmit slot uses
    the incrementally maintained row sums with the established 1e-9
    guard band and exact re-summation at the threshold boundary,
    mirroring ``_AffectanceBatchEvaluator`` arithmetic step for step.
    """

    def __init__(self, model: AffectanceThresholdModel, busy: np.ndarray):
        sub = model.weight_matrix()[np.ix_(busy, busy)]
        self._sub = sub
        self._flat = sub.reshape(-1)
        self._stride = busy.size
        self._row_sums = sub.sum(axis=1)
        self._diag = sub.diagonal().copy()
        self._cols = np.arange(busy.size)
        self._compacted = False
        self._threshold = model.threshold
        self._size = busy.size
        # Scratch pools sized to the transmitter count actually seen;
        # the row-base pool is separate from the 2-D index pool so the
        # broadcast add never reads through its own output.
        self._row_pool = np.empty(busy.size, dtype=np.int64)
        self._imp_pool = np.empty(busy.size)
        self._ok_pool = np.empty(busy.size, dtype=bool)
        self._idx_pool = np.empty(0, dtype=np.int64)
        self._val_pool = np.empty(0)

    def evaluate(self, attempt, att_idx):
        t = att_idx.size
        threshold = self._threshold
        if t == self._size:
            # All-transmit fast path: maintained row sums, guard band,
            # exact re-sum at the boundary (see the batch evaluator).
            impact = self._row_sums - self._diag
            ok = impact <= threshold
            borderline = np.abs(impact - threshold) < 1e-9
            if borderline.any():
                rows = self._cols[borderline]
                exact = (
                    self._sub[rows[:, None], self._cols].sum(axis=1)
                    - self._diag[borderline]
                )
                ok[borderline] = exact <= threshold
            return ok
        t_idx = self._cols.take(att_idx) if self._compacted else att_idx
        if self._idx_pool.size < t * t:
            self._idx_pool = np.empty(t * t * 2, dtype=np.int64)
            self._val_pool = np.empty(t * t * 2)
        idx2d = self._idx_pool[:t * t].reshape(t, t)
        val2d = self._val_pool[:t * t].reshape(t, t)
        rows = np.multiply(t_idx, self._stride, out=self._row_pool[:t])
        np.add(rows.reshape(t, 1), t_idx, out=idx2d)
        # One flat gather of the transmitter submatrix; indices are
        # in-range by construction so the bounds mode is free.
        self._flat.take(idx2d, out=val2d, mode="clip")
        # C-contiguous (t, t) row sums — the same pairwise reduction,
        # on the same values, as the scalar reference's
        # `W[ix_(ids, ids)].sum(axis=1)`, hence bit-identical.
        impact = np.add.reduce(val2d, axis=1, out=self._imp_pool[:t])
        np.subtract(impact, val2d.diagonal(), out=impact)
        return np.less_equal(impact, threshold, out=self._ok_pool[:t])

    def drop(self, keep):
        gone = self._cols[~keep]
        kept = self._cols[keep]
        self._row_sums = (
            self._row_sums[keep]
            - self._sub[kept[:, None], gone].sum(axis=1)
        )
        self._diag = self._diag[keep]
        self._cols = kept
        self._size = kept.size
        self._compacted = True


class _ConflictFusedEval(_FusedEval):
    """Inline conflict check on the frozen adjacency submatrix.

    Pure boolean algebra — exactly the scalar set intersection — so
    the transmitter-submatrix formulation needs no numeric care.
    """

    def __init__(self, model: ConflictGraphModel, busy: np.ndarray):
        adj = model.adjacency_matrix()[np.ix_(busy, busy)]
        self._flat = adj.reshape(-1)
        self._stride = busy.size
        self._cols = np.arange(busy.size)
        self._compacted = False
        self._row_pool = np.empty(busy.size, dtype=np.int64)
        self._idx_pool = np.empty(0, dtype=np.int64)
        self._val_pool = np.empty(0, dtype=bool)

    def evaluate(self, attempt, att_idx):
        t = att_idx.size
        t_idx = self._cols.take(att_idx) if self._compacted else att_idx
        if self._idx_pool.size < t * t:
            self._idx_pool = np.empty(t * t * 2, dtype=np.int64)
            self._val_pool = np.empty(t * t * 2, dtype=bool)
        idx2d = self._idx_pool[:t * t].reshape(t, t)
        val2d = self._val_pool[:t * t].reshape(t, t)
        rows = np.multiply(t_idx, self._stride, out=self._row_pool[:t])
        np.add(rows.reshape(t, 1), t_idx, out=idx2d)
        self._flat.take(idx2d, out=val2d, mode="clip")
        # The adjacency diagonal is False (no self-conflicts), so the
        # row-wise any() over the transmitter submatrix is exactly
        # "some *other* transmitter conflicts with me".
        return ~val2d.any(axis=1)

    def drop(self, keep):
        self._cols = self._cols[keep]
        self._compacted = True


class _GenericFusedEval(_FusedEval):
    """Fallback: route slots through the model's own batch evaluator.

    Used for every model without an inline fast path (SINR, MAC,
    unreliable/jammed wrappers, packet routing, third-party models).
    The fused loop still contributes chunked draws, raw CSR pops and
    lazy history; success evaluation matches the kernel path exactly
    because it *is* the kernel path's evaluator.
    """

    def __init__(self, model: InterferenceModel, busy: np.ndarray):
        self._ev = model.batch_evaluator(busy)

    def evaluate(self, attempt, att_idx):
        return self._ev.successes_local(attempt).take(att_idx)

    def drop(self, keep):
        self._ev.drop(keep)


def _make_fused_eval(model: InterferenceModel, busy: np.ndarray) -> _FusedEval:
    # type(...) checks, not isinstance: subclasses may override the
    # success predicate, in which case the inline fast path would be
    # silently wrong — they get the generic (always-correct) adapter.
    if type(model) is AffectanceThresholdModel:
        return _AffectanceFusedEval(model, busy)
    if type(model) is ConflictGraphModel:
        return _ConflictFusedEval(model, busy)
    return _GenericFusedEval(model, busy)


# ----------------------------------------------------------------------
# The fused engine
# ----------------------------------------------------------------------


def _run_kv_affectance(
    policy: "KvPolicy",
    model: AffectanceThresholdModel,
    requests: Sequence[int],
    budget: int,
    gen: np.random.Generator,
    record_history: bool,
) -> RunResult:
    """Monolithic fast lane for the headline pair: KV × affectance.

    The generic engine pays three Python method calls plus attribute
    walks per slot; this lane inlines the KV recurrence and the
    affectance evaluator into one loop of local bindings, and squeezes
    the op count further with two exact rewrites:

    * queue depths are not materialised — a link's remaining depth is
      ``group_end - head_ptr``, so serving a head is one scatter and
      drain detection one comparison against the group end;
    * the idle-streak array is replaced by ``last_reset`` (the slot the
      streak last restarted): the streak is checked every slot and
      reset at the recovery threshold, so it can only ever *hit* the
      threshold exactly, making "streak >= R" equivalent to
      ``last_reset == slot - R`` — one equality test instead of a
      counter increment plus comparison.

    Everything observable (coins consumed, attempt sets, success sets,
    delivered order, remaining order, history, final generator state)
    replays the kernel path bit-for-bit; the backend parity suite runs
    this exact pair across backends.
    """
    queues = LinkQueues(requests, model.num_links)
    order, starts = queues.csr_arrays()
    busy = queues.busy_array()
    head_ptr = starts[busy].copy()
    end_ptr = starts[busy + 1].copy()
    pending = queues.pending
    k = busy.size

    sub = model.weight_matrix()[np.ix_(busy, busy)]
    sub_flat = sub.reshape(-1)
    stride = k
    row_sums = sub.sum(axis=1)
    diag = sub.diagonal().copy()
    cols = np.arange(k)
    compacted = False
    threshold = model.threshold

    p0 = policy.p0
    p_min = policy.p_min
    backoff = policy.backoff
    rec = policy.recovery_slots
    probability = np.full(k, p0)
    # last_reset[i] == r means link i's idle streak restarted during
    # slot r (attempt or recovery); -1 reproduces the zero-initialised
    # streak (first recovery check fires during slot rec - 1).
    last_reset = np.full(k, -1, dtype=np.int64)

    att_buf = np.empty(k, dtype=bool)
    rec_buf = np.empty(k, dtype=bool)
    row_pool = np.empty(k, dtype=np.int64)
    imp_pool = np.empty(k)
    ok_pool = np.empty(k, dtype=bool)
    idx_pool = np.empty(0, dtype=np.int64)
    val_pool = np.empty(0)

    history: Optional[LazySlotHistory] = None
    if record_history:
        history = LazySlotHistory(np.asarray(requests, dtype=np.int64))

    chunk = ChunkedUniforms(gen)
    ubuf = chunk._buf
    ucursor = 0

    delivered_parts: List[np.ndarray] = []
    slots = 0
    while slots < budget and pending:
        nxt = ucursor + k
        if nxt > ubuf.size:
            chunk._cursor = ucursor
            u = chunk.take(k)
            ubuf = chunk._buf
            ucursor = chunk._cursor
        else:
            u = ubuf[ucursor:nxt]
            ucursor = nxt
            chunk._consumed += k
        attempt = np.less(u, probability, att_buf[:k])
        att_idx = attempt.nonzero()[0]
        t = att_idx.size
        heads = None
        keep = None
        if t:
            last_reset[att_idx] = slots
            if t == k:
                # All-transmit: maintained row sums + guard band with
                # exact re-summation at the threshold boundary.
                impact = row_sums - diag
                ok = impact <= threshold
                borderline = np.abs(impact - threshold) < 1e-9
                if borderline.any():
                    rows = cols[borderline]
                    exact = (
                        sub[rows[:, None], cols].sum(axis=1)
                        - diag[borderline]
                    )
                    ok[borderline] = exact <= threshold
            else:
                t_idx = cols.take(att_idx) if compacted else att_idx
                if idx_pool.size < t * t:
                    idx_pool = np.empty(t * t * 2, dtype=np.int64)
                    val_pool = np.empty(t * t * 2)
                idx2d = idx_pool[:t * t].reshape(t, t)
                val2d = val_pool[:t * t].reshape(t, t)
                rows = np.multiply(t_idx, stride, row_pool[:t])
                np.add(rows.reshape(t, 1), t_idx, idx2d)
                sub_flat.take(idx2d, None, val2d, "clip")
                # Same pairwise row reduction, same values as the
                # scalar reference's submatrix sum: identical bits.
                impact = np.add.reduce(val2d, 1, None, imp_pool[:t])
                np.subtract(impact, val2d.diagonal(), impact)
                ok = np.less_equal(impact, threshold, ok_pool[:t])
            s_idx = att_idx[ok]
            if s_idx.size:
                hp = head_ptr.take(s_idx)
                heads = order.take(hp)
                delivered_parts.append(heads)
                hp += 1
                head_ptr[s_idx] = hp
                pending -= heads.size
                if (hp == end_ptr.take(s_idx)).any():
                    keep = head_ptr < end_ptr
            if history is not None:
                history.append_mask(busy, attempt.copy(), heads)
            # KV recurrence on the attempter subset: success resets to
            # p0, failure backs off with the p_min clamp — identical
            # values to the kernel loop's masked updates.
            backed = np.maximum(
                probability.take(att_idx) * backoff, p_min
            )
            backed[ok] = p0
            probability[att_idx] = backed
        elif history is not None:
            history.append_empty()
        # Recovery: a streak can only ever hit the threshold exactly
        # (it is checked and reset every slot), and this slot's
        # attempters were re-stamped above, so the equality test
        # matches "idle >= rec" on the reference path bit for bit.
        recovered = np.equal(last_reset, slots - rec, rec_buf[:k])
        rec_idx = recovered.nonzero()[0]
        if rec_idx.size:
            doubled = probability.take(rec_idx) * 2.0
            np.minimum(doubled, p0, out=doubled)
            probability[rec_idx] = doubled
            last_reset[rec_idx] = slots
        if keep is not None:
            busy = busy[keep]
            head_ptr = head_ptr[keep]
            end_ptr = end_ptr[keep]
            probability = probability[keep]
            last_reset = last_reset[keep]
            gone = cols[~keep]
            kept = cols[keep]
            row_sums = (
                row_sums[keep] - sub[kept[:, None], gone].sum(axis=1)
            )
            diag = diag[keep]
            cols = kept
            compacted = True
            k = busy.size
        slots += 1
    chunk._cursor = ucursor
    chunk.finalize()

    if delivered_parts:
        delivered = np.concatenate(delivered_parts).tolist()
    else:
        delivered = []
    remaining: List[int] = []
    for i in range(busy.size):
        remaining.extend(order[head_ptr[i]:starts[busy[i] + 1]].tolist())
    return RunResult(
        delivered=delivered,
        remaining=remaining,
        slots_used=slots,
        history=history,
    )


def run_fused(
    policy: FusedPolicy,
    model: InterferenceModel,
    requests: Sequence[int],
    budget: int,
    gen: np.random.Generator,
    record_history: bool = False,
    backend: str = "numpy",
) -> RunResult:
    """Run a policy to completion on the fused numpy backend.

    One slot costs: a chunk-buffer view + one comparison for the
    coins, one flat submatrix gather + row-sum for the evaluator, and
    attempter-subset gathers/scatters for the CSR head pops, depth
    bookkeeping and the policy recurrence — with zero per-slot
    allocations beyond the sparse index arrays. ``backend="numba"``
    first offers the run to the compiled backend and silently falls
    back here when numba is absent or the (policy, model) pair is not
    compiled.
    """
    if backend == "numba":
        try:
            from repro.staticsched import _runloop_numba

            if _runloop_numba.supported(
                policy, model, budget, record_history
            ):
                return _runloop_numba.run_compiled(
                    policy, model, requests, budget, gen, record_history
                )
        except ImportError:  # pragma: no cover - numba genuinely absent
            pass

    if (
        type(policy) is KvPolicy
        and type(model) is AffectanceThresholdModel
    ):
        return _run_kv_affectance(
            policy, model, requests, budget, gen, record_history
        )

    queues = LinkQueues(requests, model.num_links)
    order, starts = queues.csr_arrays()
    busy = queues.busy_array()
    depths = queues.depths_for(busy)
    head_ptr = starts[busy].copy()
    pending = queues.pending

    policy.bind(model, requests, busy, depths)
    evaluator = _make_fused_eval(model, busy)
    chunk = ChunkedUniforms(gen) if policy.uses_rng else None

    history: Optional[LazySlotHistory] = None
    if record_history:
        req_links = np.asarray(requests, dtype=np.int64)
        history = LazySlotHistory(req_links)

    # Local bindings for the hot loop; the chunk cursor is inlined so
    # the common take is one slice plus two int updates, not a method
    # call (the refill slow path still goes through the chunk object,
    # which owns the leftover splice and the rewind snapshot).
    uses_rng = chunk is not None
    ubuf = chunk._buf if chunk is not None else None
    ucursor = 0
    attempt_fn = policy.attempt
    update_fn = policy.update
    evaluate = evaluator.evaluate
    no_ok = np.empty(0, dtype=bool)

    delivered_parts: List[np.ndarray] = []
    slots = 0
    while slots < budget and pending:
        k = busy.size
        if uses_rng:
            nxt = ucursor + k
            if nxt > ubuf.size:
                chunk._cursor = ucursor
                u = chunk.take(k)
                ubuf = chunk._buf
                ucursor = chunk._cursor
            else:
                u = ubuf[ucursor:nxt]
                ucursor = nxt
                chunk._consumed += k
            attempt, att_idx = attempt_fn(u, depths)
        else:
            attempt, att_idx = attempt_fn(None, depths)
        heads = None
        keep = None
        if att_idx.size:
            ok = evaluate(attempt, att_idx)
            if ok.any():
                s_idx = att_idx[ok]
                hp = head_ptr.take(s_idx)
                heads = order.take(hp)
                delivered_parts.append(heads)
                head_ptr[s_idx] = hp + 1
                served = depths.take(s_idx) - 1
                depths[s_idx] = served
                pending -= heads.size
                if not served.all():
                    keep = depths > 0
        else:
            ok = no_ok
        if history is not None:
            if att_idx.size:
                history.append_mask(busy, attempt.copy(), heads)
            else:
                history.append_empty()
        update_fn(att_idx, ok)
        if keep is not None:
            busy = busy[keep]
            depths = depths[keep]
            head_ptr = head_ptr[keep]
            evaluator.drop(keep)
            policy.compact(keep)
        slots += 1
    if chunk is not None:
        chunk._cursor = ucursor
        chunk.finalize()

    if delivered_parts:
        delivered = np.concatenate(delivered_parts).tolist()
    else:
        delivered = []
    remaining: List[int] = []
    for i in range(busy.size):
        remaining.extend(
            order[head_ptr[i]:starts[busy[i] + 1]].tolist()
        )
    return RunResult(
        delivered=delivered,
        remaining=remaining,
        slots_used=slots,
        history=history,
    )


__all__ = [
    "BACKENDS",
    "ChunkedUniforms",
    "DecayPolicy",
    "FkvPolicy",
    "FusedPolicy",
    "HmPolicy",
    "KvPolicy",
    "SingleHopPolicy",
    "available_backends",
    "default_backend",
    "numba_available",
    "resolve_backend",
    "run_fused",
    "scalar_forced",
    "set_default_backend",
    "use_backend",
]
