"""Phased decay scheduler in the style of Fanghaenel-Kesselheim-Voecking.

Reference [21] of the paper ("Improved algorithms for latency
minimization in wireless networks", TCS 2011) achieves schedule length
``O(I + log^2 n)`` with high probability for linear power assignments —
the bound behind Corollary 12.

The mechanism reproduced here: proceed in *phases*. In phase ``k`` the
measure of the still-pending requests has (whp) dropped to about
``I / 2^k``, so transmission probability ``min(1/4, 1/(4 * I/2^k))``
is safe, and a phase of length ``c * max(I/2^k, log n)`` halves the
measure again. Summing the geometric series gives ``O(I)`` slots for
the halving phases plus ``O(log n)`` phases of floor length
``O(log n)`` — in total ``O(I + log^2 n)``.

Compared to :class:`~repro.staticsched.decay.DecayScheduler` the gain
is exactly the removal of the ``log n`` *multiplicative* factor; the E1
benchmark shows the two scaling regimes side by side.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import SchedulingError
from repro.interference.base import InterferenceModel
from repro.staticsched.base import RunResult, StaticAlgorithm
from repro.staticsched.kernel import make_run_state
from repro.staticsched.runloop import FkvPolicy, resolve_backend, run_fused
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class FkvScheduler(StaticAlgorithm):
    """Phased random transmission: ``O(I + log^2 n)`` whp.

    Parameters
    ----------
    probability_scale:
        Constant ``c`` in the phase-``k`` probability ``1/(c * I_k)``.
    phase_scale:
        Constant factor on each phase's length.
    """

    name = "fkv"

    def __init__(self, probability_scale: float = 4.0, phase_scale: float = 6.0):
        self._probability_scale = check_positive(
            "probability_scale", probability_scale
        )
        self._phase_scale = check_positive("phase_scale", phase_scale)

    def state_dict(self):
        return {
            "name": self.name,
            "probability_scale": self._probability_scale,
            "phase_scale": self._phase_scale,
        }

    def budget_for(self, measure: float, n: int) -> int:
        """``O(I + log^2 n)``: the summed phase lengths."""
        measure = max(measure, 1.0)
        log_n = math.log(n + 2)
        halvings = max(1, math.ceil(math.log2(measure) + 1))
        geometric = 2.0 * self._phase_scale * self._probability_scale * measure
        floor_phases = (
            (halvings + math.ceil(log_n))
            * self._phase_scale
            * self._probability_scale
            * log_n
        )
        return max(1, math.ceil(geometric + floor_phases))

    def fused_policy(self) -> FkvPolicy:
        """A fresh fused-loop policy mirroring :meth:`run`'s dispatch
        (the batched fleet kernel builds its per-network tasks here)."""
        return FkvPolicy(self._probability_scale, self._phase_scale)

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        gen = ensure_rng(rng)
        backend = resolve_backend()
        if backend in ("numpy", "numba"):
            return run_fused(
                self.fused_policy(),
                model, requests, budget, gen, record_history,
                backend=backend,
            )
        kernel, queues, delivered, history = make_run_state(
            model, requests, record_history
        )

        n = max(1, len(list(requests)))
        log_n = math.log(n + 2)
        measure_estimate = max(model.interference_measure(list(requests)), 1.0)

        slots = 0
        phase = 0
        while slots < budget and kernel.pending:
            phase_measure = max(measure_estimate / 2.0**phase, 1.0)
            probability = min(0.25, 1.0 / (self._probability_scale * phase_measure))
            phase_length = max(
                1,
                math.ceil(
                    self._phase_scale
                    * self._probability_scale
                    * max(phase_measure, log_n)
                ),
            )
            complement = 1.0 - probability
            for _ in range(phase_length):
                if slots >= budget or not kernel.pending:
                    break
                link_probability = 1.0 - complement ** kernel.depths
                wants = gen.random(kernel.size) < link_probability
                kernel.transmit(wants)
                slots += 1
            phase += 1
        return self._finalise(queues, delivered, slots, history)


__all__ = ["FkvScheduler"]
