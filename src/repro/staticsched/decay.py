"""The random ``1/(4I)``-transmission algorithm (paper Theorem 19).

Every pending packet attempts transmission independently with
probability ``1/(4 I)`` in each slot, where ``I`` is the interference
measure of the *initial* request set (the algorithm is non-adaptive, as
in the paper). When several packets on one link decide to transmit in
the same slot, the link carries its FIFO head — the others' attempts
fold into that single transmission (the paper's one-packet-per-link
rule).

Theorem 19 shows the expected number of unserved packets drops by the
factor ``(1 - 1/(8I))`` per slot, so ``O(I log n)`` slots suffice with
high probability — for *any* interference model whose success predicate
the measure dominates (conflict graphs, affectance-threshold SINR, the
multiple-access channel with ``I = n``...).

This is the canonical ``f(n) = O(log n)``-factor algorithm the
Section-3 transformation is designed to repair, and doubles as the
work-horse base algorithm in most experiments.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import SchedulingError
from repro.interference.base import InterferenceModel
from repro.staticsched.base import RunResult, StaticAlgorithm
from repro.staticsched.kernel import make_run_state
from repro.staticsched.runloop import (
    DecayPolicy,
    resolve_backend,
    run_fused,
)
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class DecayScheduler(StaticAlgorithm):
    """Non-adaptive random transmission with probability ``1/(4 I)``.

    Parameters
    ----------
    probability_scale:
        The constant ``c`` in the per-slot probability ``1/(c * I)``;
        the paper uses 4.
    budget_scale:
        Constant factor on the ``I * log n`` budget recommendation.
    measure_floor:
        Lower clamp on the measure used in the probability (an
        instance with ``I < 1`` still transmits with probability at
        most ``1/c``).
    """

    name = "decay"

    def __init__(
        self,
        probability_scale: float = 4.0,
        budget_scale: float = 8.0,
        measure_floor: float = 1.0,
    ):
        self._probability_scale = check_positive(
            "probability_scale", probability_scale
        )
        self._budget_scale = check_positive("budget_scale", budget_scale)
        self._measure_floor = check_positive("measure_floor", measure_floor)

    def state_dict(self):
        return {
            "name": self.name,
            "probability_scale": self._probability_scale,
            "budget_scale": self._budget_scale,
            "measure_floor": self._measure_floor,
        }

    def budget_for(self, measure: float, n: int) -> int:
        """``O(I log n)`` slots: ``budget_scale * c * max(I, 1) * ln(n + 2)``."""
        measure = max(measure, self._measure_floor)
        return max(
            1,
            math.ceil(
                self._budget_scale
                * self._probability_scale
                * measure
                * math.log(n + 2)
            ),
        )

    def fused_policy(self) -> DecayPolicy:
        """A fresh fused-loop policy mirroring :meth:`run`'s dispatch
        (the batched fleet kernel builds its per-network tasks here)."""
        return DecayPolicy(self._probability_scale, self._measure_floor)

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        gen = ensure_rng(rng)
        backend = resolve_backend()
        if backend in ("numpy", "numba"):
            return run_fused(
                self.fused_policy(),
                model, requests, budget, gen, record_history,
                backend=backend,
            )
        kernel, queues, delivered, history = make_run_state(
            model, requests, record_history
        )

        measure = max(
            model.interference_measure(list(requests)), self._measure_floor
        )
        probability = min(1.0, 1.0 / (self._probability_scale * measure))

        # Each pending packet tosses its own coin; the link transmits if
        # at least one of them wants to. The kernel keeps the busy set
        # and queue depths as aligned arrays, so a slot is one batched
        # draw plus one batched success evaluation.
        complement = 1.0 - probability
        slots = 0
        while slots < budget and kernel.pending:
            link_probability = 1.0 - complement ** kernel.depths
            wants = gen.random(kernel.size) < link_probability
            kernel.transmit(wants)
            slots += 1
        return self._finalise(queues, delivered, slots, history)


__all__ = ["DecayScheduler"]
