"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can distinguish library failures from
programming mistakes (plain ``TypeError``/``ValueError`` from numpy etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent or invalid parameters.

    Examples: a negative injection rate, a frame length that cannot fit the
    two protocol phases, a power assignment that makes a link infeasible in
    isolation.
    """


class TopologyError(ReproError):
    """A network, link set, or path is structurally invalid.

    Examples: a path referencing a link id that does not exist, a link
    whose sender equals its receiver, an empty network where links are
    required.
    """


class InjectionError(ReproError):
    """An injection process violated its declared contract.

    Raised by the adversary auditor when a supposedly ``(w, lambda)``-bounded
    adversary injects more interference measure than allowed, and by
    stochastic processes whose per-generator distributions do not sum to a
    probability.
    """


class SchedulingError(ReproError):
    """A scheduling algorithm was invoked on inputs it cannot handle.

    Examples: requests referencing links outside the model, a budget of
    zero slots, an algorithm that requires station ids applied to an
    anonymous channel.
    """


class InfeasibleLinkError(ConfigurationError):
    """A link cannot satisfy its SINR constraint even with zero interference.

    Carries the offending link id so callers can report or drop it.
    """

    def __init__(self, link_id: int, message: str | None = None):
        self.link_id = link_id
        super().__init__(
            message
            or f"link {link_id} cannot meet its SINR threshold even in isolation"
        )


class StabilityError(ReproError):
    """A stability analysis could not reach a verdict.

    Raised when a simulation horizon is too short for the drift estimator
    to distinguish a stable queue from an unstable one at the requested
    confidence.
    """
