"""Directed communication links.

A link is an ordered pair (sender node, receiver node) with an integer id
equal to its index in the owning network's link list. The id is what
appears in packet paths, request vectors ``R``, and interference-matrix
indices — all per-link data in the library is stored in arrays indexed by
link id.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError


@dataclass(frozen=True)
class Link:
    """A directed communication link ``sender -> receiver``."""

    id: int
    sender: int
    receiver: int

    def __post_init__(self):
        if self.sender == self.receiver:
            raise TopologyError(
                f"link {self.id}: sender and receiver are the same node "
                f"({self.sender})"
            )
        if self.id < 0:
            raise TopologyError(f"link id must be non-negative, got {self.id}")

    @property
    def endpoints(self) -> frozenset:
        """The unordered pair of endpoint node ids."""
        return frozenset((self.sender, self.receiver))

    def reversed(self, new_id: int) -> "Link":
        """The opposite-direction link, under a fresh id."""
        return Link(new_id, self.receiver, self.sender)

    def shares_endpoint(self, other: "Link") -> bool:
        """Whether the two links touch a common node (node-constraint model)."""
        return bool(self.endpoints & other.endpoints)

    def __str__(self) -> str:
        return f"e{self.id}({self.sender}->{self.receiver})"


__all__ = ["Link"]
