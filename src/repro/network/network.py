"""The network container.

:class:`Network` owns the node set (optionally with geometric positions),
the directed link list, and the maximum path length ``D``. It provides
the derived quantities the paper uses throughout:

* ``m`` — the significant network size ``max(|E|, D)`` (Section 2);
* link length (for geometric networks), used by power assignments;
* adjacency indices (links out of / into a node), used by routing and by
  the node-constraint conflict model.

The container is immutable after construction: algorithms never mutate
the network, they only read it. Dynamic state (queues, buffers) lives in
the protocol objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.geometry.metric import EuclideanMetric, Metric
from repro.geometry.point import Point
from repro.network.link import Link


class Network:
    """A directed communication graph with optional geometry.

    Parameters
    ----------
    num_nodes:
        Number of nodes; node ids are ``0 .. num_nodes-1``.
    links:
        Directed links as ``(sender, receiver)`` pairs, in id order.
    positions:
        Optional node positions. When given, the network is *geometric*:
        link lengths and a :class:`~repro.geometry.metric.Metric` become
        available (required by the SINR models).
    metric:
        Optional explicit metric overriding the Euclidean one derived
        from ``positions`` (for fading-metric experiments). Must have
        ``size == num_nodes``.
    max_path_length:
        The bound ``D`` on path lengths. Defaults to ``num_nodes`` (any
        simple path fits). The significant size ``m = max(|E|, D)``.
    """

    def __init__(
        self,
        num_nodes: int,
        links: Sequence[Tuple[int, int]],
        positions: Optional[Sequence[Point]] = None,
        metric: Optional[Metric] = None,
        max_path_length: Optional[int] = None,
    ):
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        self._num_nodes = int(num_nodes)

        self._links: List[Link] = []
        seen = set()
        for idx, (s, r) in enumerate(links):
            if not (0 <= s < num_nodes and 0 <= r < num_nodes):
                raise TopologyError(
                    f"link {idx} endpoints ({s}, {r}) outside node range "
                    f"0..{num_nodes - 1}"
                )
            if (s, r) in seen:
                raise TopologyError(f"duplicate link ({s}, {r}) at index {idx}")
            seen.add((s, r))
            self._links.append(Link(idx, int(s), int(r)))

        if positions is not None and len(positions) != num_nodes:
            raise ConfigurationError(
                f"got {len(positions)} positions for {num_nodes} nodes"
            )
        self._positions = list(positions) if positions is not None else None

        if metric is not None:
            if metric.size != num_nodes:
                raise ConfigurationError(
                    f"metric has {metric.size} points but network has "
                    f"{num_nodes} nodes"
                )
            self._metric: Optional[Metric] = metric
        elif self._positions is not None:
            self._metric = EuclideanMetric(self._positions)
        else:
            self._metric = None

        if max_path_length is None:
            max_path_length = num_nodes
        if max_path_length < 1:
            raise ConfigurationError(
                f"max_path_length must be >= 1, got {max_path_length}"
            )
        self._max_path_length = int(max_path_length)

        self._out: Dict[int, List[int]] = {v: [] for v in range(num_nodes)}
        self._in: Dict[int, List[int]] = {v: [] for v in range(num_nodes)}
        self._by_endpoints: Dict[Tuple[int, int], int] = {}
        for link in self._links:
            self._out[link.sender].append(link.id)
            self._in[link.receiver].append(link.id)
            self._by_endpoints[(link.sender, link.receiver)] = link.id

        self._lengths: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return self._num_nodes

    @property
    def num_links(self) -> int:
        """Number of directed links ``|E|``."""
        return len(self._links)

    @property
    def links(self) -> List[Link]:
        """All links in id order (a fresh list; the network is immutable)."""
        return list(self._links)

    def link(self, link_id: int) -> Link:
        """The link with the given id."""
        return self._links[link_id]

    @property
    def max_path_length(self) -> int:
        """The path-length bound ``D``."""
        return self._max_path_length

    @property
    def size_m(self) -> int:
        """The paper's significant network size ``m = max(|E|, D)``."""
        return max(self.num_links, self._max_path_length)

    @property
    def is_geometric(self) -> bool:
        """Whether node positions / a metric are available."""
        return self._metric is not None

    @property
    def positions(self) -> List[Point]:
        """Node positions (geometric networks only)."""
        if self._positions is None:
            raise TopologyError("network has no node positions")
        return list(self._positions)

    @property
    def metric(self) -> Metric:
        """The node metric (geometric networks only)."""
        if self._metric is None:
            raise TopologyError("network has no metric")
        return self._metric

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def links_from(self, node: int) -> List[int]:
        """Ids of links leaving ``node``."""
        return list(self._out[node])

    def links_into(self, node: int) -> List[int]:
        """Ids of links entering ``node``."""
        return list(self._in[node])

    def link_between(self, sender: int, receiver: int) -> Optional[int]:
        """Id of the link ``sender -> receiver`` if present, else ``None``."""
        return self._by_endpoints.get((sender, receiver))

    # ------------------------------------------------------------------
    # Geometry-derived quantities
    # ------------------------------------------------------------------

    def link_lengths(self) -> np.ndarray:
        """Array of link lengths ``d(sender, receiver)`` indexed by link id."""
        if self._metric is None:
            raise TopologyError("link lengths require a geometric network")
        if self._lengths is None:
            pair = self._metric.pairwise()
            self._lengths = np.asarray(
                [pair[link.sender, link.receiver] for link in self._links]
            )
        return self._lengths

    def length_diversity(self) -> float:
        """``Delta``: ratio of the longest to the shortest link length."""
        lengths = self.link_lengths()
        shortest = float(lengths.min())
        if shortest <= 0:
            raise TopologyError("zero-length link; length diversity undefined")
        return float(lengths.max()) / shortest

    # ------------------------------------------------------------------
    # Path validation
    # ------------------------------------------------------------------

    def validate_path(self, path: Sequence[int]) -> Tuple[int, ...]:
        """Check that ``path`` is a connected link sequence within bounds.

        Returns the path as a tuple. Paths may revisit nodes and links
        (the paper allows this) but must chain head-to-tail and respect
        ``D``.
        """
        if len(path) == 0:
            raise TopologyError("empty path")
        if len(path) > self._max_path_length:
            raise TopologyError(
                f"path length {len(path)} exceeds bound D={self._max_path_length}"
            )
        for link_id in path:
            if not (0 <= link_id < self.num_links):
                raise TopologyError(f"path references unknown link id {link_id}")
        for prev, nxt in zip(path, path[1:]):
            if self._links[prev].receiver != self._links[nxt].sender:
                raise TopologyError(
                    f"path breaks between {self._links[prev]} and {self._links[nxt]}"
                )
        return tuple(int(e) for e in path)

    def __repr__(self) -> str:
        geo = "geometric" if self.is_geometric else "abstract"
        return (
            f"Network(nodes={self.num_nodes}, links={self.num_links}, "
            f"D={self._max_path_length}, {geo})"
        )


__all__ = ["Network"]
