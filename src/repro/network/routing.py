"""Routing tables and shortest link paths.

The paper assumes packet paths are "fixed for each packet, e.g., by
routing tables" (Section 2). This module builds those tables: for every
ordered node pair with a directed path, the table stores a shortest path
*as a sequence of link ids*, computed once with breadth-first search (all
links cost 1, matching the paper's hop-count bound ``D``).

Injection processes then sample source/destination pairs and look the
path up, so every injected packet carries a valid, length-bounded path.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.network.network import Network


def shortest_link_path(
    network: Network, source: int, destination: int
) -> Optional[Tuple[int, ...]]:
    """Shortest directed path from ``source`` to ``destination`` as link ids.

    Returns ``None`` when no path exists, and an empty tuple when
    ``source == destination``. Uses BFS, so the result minimises hop
    count.
    """
    if source == destination:
        return ()
    parent_link: Dict[int, int] = {}
    visited = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for link_id in network.links_from(node):
            nxt = network.link(link_id).receiver
            if nxt in visited:
                continue
            visited.add(nxt)
            parent_link[nxt] = link_id
            if nxt == destination:
                return _unwind(network, parent_link, source, destination)
            frontier.append(nxt)
    return None


def _unwind(
    network: Network, parent_link: Dict[int, int], source: int, destination: int
) -> Tuple[int, ...]:
    path: List[int] = []
    node = destination
    while node != source:
        link_id = parent_link[node]
        path.append(link_id)
        node = network.link(link_id).sender
    path.reverse()
    return tuple(path)


class RoutingTable:
    """All-pairs shortest link paths for a network.

    Paths longer than the network's ``D`` are excluded (they could never
    be injected), so :meth:`pairs` is exactly the set of node pairs an
    injection process may legally use.
    """

    def __init__(self, network: Network, paths: Dict[Tuple[int, int], Tuple[int, ...]]):
        self._network = network
        self._paths = paths

    @property
    def network(self) -> Network:
        return self._network

    def path(self, source: int, destination: int) -> Tuple[int, ...]:
        """The stored path; raises :class:`TopologyError` if absent."""
        key = (source, destination)
        if key not in self._paths:
            raise TopologyError(f"no routed path from {source} to {destination}")
        return self._paths[key]

    def has_path(self, source: int, destination: int) -> bool:
        return (source, destination) in self._paths

    def pairs(self) -> List[Tuple[int, int]]:
        """All routed ``(source, destination)`` pairs, sorted."""
        return sorted(self._paths)

    def pairs_with_length(self, hops: int) -> List[Tuple[int, int]]:
        """Routed pairs whose stored path has exactly ``hops`` links."""
        return sorted(k for k, v in self._paths.items() if len(v) == hops)

    def max_hops(self) -> int:
        """Length of the longest stored path (0 for an empty table)."""
        if not self._paths:
            return 0
        return max(len(p) for p in self._paths.values())

    def __len__(self) -> int:
        return len(self._paths)


def build_routing_table(
    network: Network, sources: Optional[Sequence[int]] = None
) -> RoutingTable:
    """BFS from each source; keep all reachable pairs within the ``D`` bound.

    ``sources`` restricts the table rows (useful for large networks where
    only a few nodes inject).
    """
    if sources is None:
        sources = range(network.num_nodes)
    paths: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    for source in sources:
        for destination, path in _bfs_tree_paths(network, source).items():
            if 0 < len(path) <= network.max_path_length:
                paths[(source, destination)] = path
    return RoutingTable(network, paths)


def _bfs_tree_paths(network: Network, source: int) -> Dict[int, Tuple[int, ...]]:
    """Shortest link paths from ``source`` to every reachable node."""
    parent_link: Dict[int, int] = {}
    visited = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for link_id in network.links_from(node):
            nxt = network.link(link_id).receiver
            if nxt in visited:
                continue
            visited.add(nxt)
            parent_link[nxt] = link_id
            frontier.append(nxt)
    result: Dict[int, Tuple[int, ...]] = {}
    for destination in visited:
        if destination == source:
            continue
        result[destination] = _unwind(network, parent_link, source, destination)
    return result


__all__ = ["RoutingTable", "shortest_link_path", "build_routing_table"]
