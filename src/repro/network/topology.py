"""Ready-made topology generators.

Each generator returns a :class:`~repro.network.network.Network`. The
geometric ones also carry node positions so the SINR machinery applies;
the abstract ones (multiple-access channel) do not need geometry.

``figure1_instance`` reconstructs the lower-bound network of the paper's
Figure 1 / Theorem 20: ``m - 1`` short links whose transmissions always
succeed, plus one long link that is silenced by any short-link activity.
The geometric layout here *realises* that behaviour under uniform powers
with a suitable path-loss exponent; the idealised success predicate the
proof actually uses lives in :mod:`repro.core.lower_bound`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.placement import (
    grid_placement,
    line_placement,
    uniform_placement,
)
from repro.geometry.point import Point
from repro.network.network import Network
from repro.utils.rng import RngLike, ensure_rng


def random_sinr_network(
    num_nodes: int,
    side: float = 1.0,
    max_link_length: Optional[float] = None,
    max_path_length: Optional[int] = None,
    rng: RngLike = None,
) -> Network:
    """Random geometric network: uniform nodes, bidirected proximity links.

    Nodes are uniform in the ``side x side`` square; a pair is linked (in
    both directions) when within ``max_link_length``. The default
    ``max_link_length`` is the standard connectivity radius
    ``side * sqrt(2 * ln(n) / n)``, which makes the graph connected with
    high probability without being dense.
    """
    if num_nodes < 2:
        raise ConfigurationError(f"need at least 2 nodes, got {num_nodes}")
    if not side > 0:
        raise ConfigurationError(
            f"side must be positive, got {side!r}; a non-positive square "
            "has no placement area"
        )
    if max_link_length is not None and not max_link_length > 0:
        # A non-positive radius used to fall through to the
        # nearest-neighbour fallback — a silently absurd network.
        raise ConfigurationError(
            f"max_link_length must be positive, got {max_link_length!r}"
        )
    gen = ensure_rng(rng)
    points = uniform_placement(num_nodes, side=side, rng=gen)
    if max_link_length is None:
        max_link_length = side * math.sqrt(2.0 * math.log(num_nodes) / num_nodes)
    links = _proximity_links(points, max_link_length)
    if not links:
        # Degenerate draw (tiny n): fall back to linking nearest neighbours.
        links = _nearest_neighbour_links(points)
    return Network(
        num_nodes, links, positions=points, max_path_length=max_path_length
    )


def _proximity_links(points: List[Point], radius: float) -> List[Tuple[int, int]]:
    coords = np.asarray([(p.x, p.y) for p in points])
    diff = coords[:, None, :] - coords[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    links: List[Tuple[int, int]] = []
    n = len(points)
    for i in range(n):
        for j in range(n):
            if i != j and dist[i, j] <= radius:
                links.append((i, j))
    return links


def _nearest_neighbour_links(points: List[Point]) -> List[Tuple[int, int]]:
    coords = np.asarray([(p.x, p.y) for p in points])
    diff = coords[:, None, :] - coords[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    np.fill_diagonal(dist, np.inf)
    links = []
    for i in range(len(points)):
        j = int(dist[i].argmin())
        links.append((i, j))
        links.append((j, i))
    return sorted(set(links))


def grid_network(
    rows: int, cols: int, spacing: float = 1.0, max_path_length: Optional[int] = None
) -> Network:
    """A ``rows x cols`` grid; links connect 4-neighbours in both directions."""
    if rows < 1 or cols < 1:
        raise ConfigurationError(
            f"grid dimensions must be >= 1, got {rows} x {cols}"
        )
    if rows * cols < 2:
        # A 1x1 grid would be a linkless single node — every consumer
        # (routing, injection, interference) would fail later and worse.
        raise ConfigurationError(
            f"grid needs at least 2 nodes, got {rows} x {cols} = "
            f"{rows * cols}"
        )
    if not spacing > 0:
        raise ConfigurationError(
            f"spacing must be positive, got {spacing!r}"
        )
    points = grid_placement(rows, cols, spacing)
    links: List[Tuple[int, int]] = []

    def node(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                links.append((node(r, c), node(r, c + 1)))
                links.append((node(r, c + 1), node(r, c)))
            if r + 1 < rows:
                links.append((node(r, c), node(r + 1, c)))
                links.append((node(r + 1, c), node(r, c)))
    return Network(
        rows * cols, links, positions=points, max_path_length=max_path_length
    )


def line_network(
    num_nodes: int,
    spacing: float = 1.0,
    bidirectional: bool = False,
    max_path_length: Optional[int] = None,
) -> Network:
    """A chain ``0 -> 1 -> ... -> n-1`` (optionally with reverse links).

    The workhorse of the latency-vs-path-length experiment (E3): a packet
    injected at node 0 for node ``d`` has a unique path of exactly ``d``
    hops.
    """
    if num_nodes < 2:
        raise ConfigurationError(f"need at least 2 nodes, got {num_nodes}")
    if not spacing > 0:
        raise ConfigurationError(
            f"spacing must be positive, got {spacing!r}"
        )
    points = line_placement(num_nodes, spacing)
    links = [(i, i + 1) for i in range(num_nodes - 1)]
    if bidirectional:
        links += [(i + 1, i) for i in range(num_nodes - 1)]
    return Network(
        num_nodes, links, positions=points, max_path_length=max_path_length
    )


def star_network(leaves: int, radius: float = 1.0) -> Network:
    """A star: ``leaves`` outer nodes, each linked to and from the centre.

    Node 0 is the centre; leaves sit evenly on a circle of ``radius``.
    """
    if leaves < 1:
        raise ConfigurationError(f"need at least 1 leaf, got {leaves}")
    if not radius > 0:
        # radius 0 would place every leaf on the centre: zero-length
        # links, and SINR path loss divides by them.
        raise ConfigurationError(
            f"radius must be positive, got {radius!r}"
        )
    points = [Point(0.0, 0.0)]
    for k in range(leaves):
        angle = 2.0 * math.pi * k / leaves
        points.append(Point(radius * math.cos(angle), radius * math.sin(angle)))
    links: List[Tuple[int, int]] = []
    for leaf in range(1, leaves + 1):
        links.append((leaf, 0))
        links.append((0, leaf))
    return Network(leaves + 1, links, positions=points)


def mac_network(num_stations: int) -> Network:
    """The multiple-access channel as a network: stations -> base station.

    Node ``num_stations`` is the base; station ``i`` has the single link
    ``i -> base`` with link id ``i``. No geometry — the channel model in
    :mod:`repro.interference.mac` declares every pair of links mutually
    conflicting, which is exactly the all-ones ``W`` of Section 7.1.
    """
    if num_stations < 1:
        raise ConfigurationError(f"need at least 1 station, got {num_stations}")
    base = num_stations
    links = [(i, base) for i in range(num_stations)]
    return Network(num_stations + 1, links, max_path_length=1)


def figure1_instance(
    m: int, short_length: float = 1.0, separation: float = 1000.0
) -> Network:
    """The Figure-1 lower-bound instance: ``m - 1`` short links + 1 long link.

    Link ids ``0 .. m-2`` are the short links; link id ``m - 1`` is the
    long link. Short link ``i`` occupies nodes ``2i`` (sender) and
    ``2i + 1`` (receiver), laid out along a line with ``separation``
    between consecutive short links so that, under uniform powers, short
    links never disturb each other. The long link runs from node
    ``2(m-1)`` to node ``2(m-1)+1``: its sender sits beyond the last
    short link and its receiver at the line's origin end, so the
    transmission must traverse (and be jammed by) every short link.

    All paths have length 1 (single-hop instance), matching the proof.
    """
    if m < 2:
        raise ConfigurationError(f"Figure-1 instance needs m >= 2, got {m}")
    if not short_length > 0:
        raise ConfigurationError(
            f"short_length must be positive, got {short_length!r}"
        )
    if not separation > 0:
        raise ConfigurationError(
            f"separation must be positive, got {separation!r}"
        )
    points: List[Point] = []
    links: List[Tuple[int, int]] = []
    for i in range(m - 1):
        x = i * separation
        points.append(Point(x, 0.0))  # node 2i, sender
        points.append(Point(x + short_length, 0.0))  # node 2i+1, receiver
        links.append((2 * i, 2 * i + 1))
    long_sender_x = (m - 1) * separation
    points.append(Point(long_sender_x, 0.0))  # node 2(m-1), long sender
    points.append(Point(-separation, 0.0))  # node 2(m-1)+1, long receiver
    links.append((2 * (m - 1), 2 * (m - 1) + 1))
    return Network(2 * m, links, positions=points, max_path_length=1)


__all__ = [
    "random_sinr_network",
    "grid_network",
    "line_network",
    "star_network",
    "mac_network",
    "figure1_instance",
]
