"""Network substrate: links, the network container, routing, topologies.

The paper models the network as a directed graph ``G = (V, E)`` whose
edges are the possible communication links (Section 2). Packets follow
fixed paths of length at most ``D``; the significant network size is
``m = max(|E|, D)``. This subpackage provides those structures plus
routing-table construction and ready-made topology generators, including
the Figure-1 instance used by the Theorem-20 lower bound.
"""

from repro.network.link import Link
from repro.network.network import Network
from repro.network.routing import RoutingTable, shortest_link_path, build_routing_table
from repro.network.topology import (
    figure1_instance,
    grid_network,
    line_network,
    mac_network,
    random_sinr_network,
    star_network,
)

__all__ = [
    "Link",
    "Network",
    "RoutingTable",
    "shortest_link_path",
    "build_routing_table",
    "random_sinr_network",
    "grid_network",
    "line_network",
    "star_network",
    "mac_network",
    "figure1_instance",
]
