"""Shared utilities: seeded randomness and argument validation."""

from repro.utils.rng import RngFactory, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_nonnegative,
)

__all__ = [
    "RngFactory",
    "ensure_rng",
    "spawn_rngs",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_nonnegative",
]
