"""Seeded random-number management.

All randomness in the library flows through :class:`numpy.random.Generator`
objects. Nothing in the package touches numpy's or Python's global RNG
state, so two runs with the same seed are bit-for-bit identical and
independent components can be re-seeded without interfering with each
other.

The idiom used throughout:

* public entry points accept ``rng: Generator | int | None``;
* :func:`ensure_rng` normalises that argument;
* components that need several independent streams (e.g. one per packet
  generator) use :func:`spawn_rngs` or an :class:`RngFactory`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

import numpy as np

RngLike = Union[np.random.Generator, int, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a freshly-seeded generator, an ``int`` is used as the
    seed, and an existing generator is returned unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent generators.

    Spawning is deterministic: the same parent seed always produces the
    same children, which keeps multi-component simulations replayable.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    return [np.random.default_rng(s) for s in parent.bit_generator.seed_seq.spawn(count)]


def generator_state(rng: np.random.Generator) -> Dict[str, Any]:
    """Snapshot a generator's bit-generator state as a JSON-able dict.

    PCG64 (the library default) exposes its whole state as plain ints;
    Python's arbitrary-precision integers round-trip through JSON, so
    the snapshot can be serialized and restored bit-exactly.
    """
    return rng.bit_generator.state


def restore_generator_state(
    rng: np.random.Generator, state: Dict[str, Any]
) -> None:
    """Restore a snapshot taken with :func:`generator_state`.

    Raises :class:`repro.errors.ConfigurationError` if the snapshot does
    not match the generator's bit-generator type or shape.
    """
    from repro.errors import ConfigurationError

    if not isinstance(state, dict):
        raise ConfigurationError(
            f"RNG state must be a dict, got {type(state).__name__}"
        )
    try:
        rng.bit_generator.state = state
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"incompatible RNG state: {exc}") from exc


class RngFactory:
    """Hands out independent generators derived from one master seed.

    Useful when the number of consumers is not known up front (e.g. one
    stream per injected packet batch). Each call to :meth:`next` returns a
    new independent generator; the sequence of generators is a pure
    function of the master seed.
    """

    def __init__(self, seed: RngLike = None):
        parent = ensure_rng(seed)
        self._seed_seq = parent.bit_generator.seed_seq
        self._count = 0

    def next(self) -> np.random.Generator:
        """Return the next independent generator in the sequence."""
        child = self._seed_seq.spawn(self._count + 1)[self._count]
        self._count += 1
        return np.random.default_rng(child)

    @property
    def spawned(self) -> int:
        """Number of generators handed out so far."""
        return self._count


def random_subset(rng: np.random.Generator, items: list, probability: float) -> list:
    """Return a subset of ``items`` keeping each independently w.p. ``probability``."""
    if not items:
        return []
    mask = rng.random(len(items)) < probability
    return [item for item, keep in zip(items, mask) if keep]


def geometric_delay(rng: np.random.Generator, success_probability: float) -> int:
    """Sample a geometric waiting time (number of failures before success)."""
    if not 0.0 < success_probability <= 1.0:
        raise ValueError(
            f"success probability must be in (0, 1], got {success_probability}"
        )
    return int(rng.geometric(success_probability)) - 1


__all__ = [
    "RngLike",
    "ensure_rng",
    "generator_state",
    "restore_generator_state",
    "spawn_rngs",
    "RngFactory",
    "random_subset",
    "geometric_delay",
]
