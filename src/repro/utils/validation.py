"""Argument-validation helpers.

Small, explicit checks used at public API boundaries. Each raises
:class:`~repro.errors.ConfigurationError` with a message naming the
offending parameter, so misconfiguration surfaces at construction time
rather than as a numpy broadcast error deep inside a simulation.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it unchanged."""
    if not (value > 0):
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it unchanged."""
    if not (value >= 0):
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it unchanged."""
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: Optional[float] = None,
    high: Optional[float] = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Require ``value`` to lie in the given (possibly half-open) interval."""
    if low is not None:
        if low_inclusive and value < low:
            raise ConfigurationError(f"{name} must be >= {low}, got {value!r}")
        if not low_inclusive and value <= low:
            raise ConfigurationError(f"{name} must be > {low}, got {value!r}")
    if high is not None:
        if high_inclusive and value > high:
            raise ConfigurationError(f"{name} must be <= {high}, got {value!r}")
        if not high_inclusive and value >= high:
            raise ConfigurationError(f"{name} must be < {high}, got {value!r}")
    return value


def check_integer(name: str, value: int) -> int:
    """Require ``value`` to be an integral number; return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    return int(value)


def check_finite(name: str, value: float) -> float:
    """Require ``value`` to be a finite float."""
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return value


__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_in_range",
    "check_integer",
    "check_finite",
]
