"""The experiment inventory — and the CLI's named sweep-cell builders.

One row per experiment in EXPERIMENTS.md. The CLI prints this table;
tests assert that every listed bench file exists so the registry cannot
drift from the benchmark suite.

This module also registers the CLI's protocol/injection builders with
:mod:`repro.sim.sharding` under stable names, so a sweep or compare run
can be described as picklable :class:`~repro.sim.sharding.CellSpec`
work units (no closures) and executed serially or across worker
processes with identical results. Cells carry
``requires=("repro.cli.registry",)`` so spawn-style workers import this
module (and thereby register the builders) before resolving names.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List

from repro.cli.builders import build_scenario
from repro.core.competitive import certified_rate
from repro.core.protocol import DynamicProtocol
from repro.core.transform import TransformedAlgorithm
from repro.errors import ConfigurationError
from repro.injection.stochastic import uniform_pair_injection
from repro.network.routing import build_routing_table
from repro.network.topology import random_sinr_network
from repro.sim.sharding import (
    register_injection_builder,
    register_pair_builder,
    register_protocol_builder,
)
from repro.sinr.weights import linear_power_model
from repro.staticsched.decay import DecayScheduler
from repro.staticsched.hm import HmScheduler
from repro.staticsched.kv import KvScheduler


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproduced claim and where to regenerate it."""

    id: str
    paper_ref: str
    claim: str
    bench_file: str


EXPERIMENTS: List[ExperimentEntry] = [
    ExperimentEntry(
        "E1", "Theorem 1",
        "Algorithm-1 transformation makes schedule length linear in I",
        "bench_e1_transform.py",
    ),
    ExperimentEntry(
        "E2", "Theorem 3",
        "two-phase frames: queues bounded below provisioning, diverge above",
        "bench_e2_stability.py",
    ),
    ExperimentEntry(
        "E3", "Theorem 8",
        "expected latency O(d*T), linear in path length",
        "bench_e3_latency.py",
    ),
    ExperimentEntry(
        "E4", "Theorem 11",
        "random shift stabilises all (w, lambda)-bounded adversaries",
        "bench_e4_adversarial.py",
    ),
    ExperimentEntry(
        "E5", "Corollary 12",
        "linear power: constant-competitive (feasible measure flat in m)",
        "bench_e5_linear_power.py",
    ),
    ExperimentEntry(
        "E6", "Corollary 13",
        "monotone sub-linear power: O(log^2 m)-competitive",
        "bench_e6_sublinear_power.py",
    ),
    ExperimentEntry(
        "E7", "Corollary 14",
        "free power control: O(log m) fading / O(log^2 m) general",
        "bench_e7_power_control.py",
    ),
    ExperimentEntry(
        "E8", "Lemma 15 / Cor. 16",
        "symmetric MAC: (1+delta)e*n + O(log^2 n) slots; stable below 1/e",
        "bench_e8_mac_symmetric.py",
    ),
    ExperimentEntry(
        "E9", "Lemma 17 / Cor. 18",
        "Round-Robin-Withholding: exactly n + m slots; stable below 1",
        "bench_e9_mac_roundrobin.py",
    ),
    ExperimentEntry(
        "E10", "Theorem 19 / Sec. 7.2",
        "conflict graphs: O(I log n) slots; rho caps achievable rates",
        "bench_e10_conflict.py",
    ),
    ExperimentEntry(
        "E11", "Theorem 20 / Figure 1",
        "global clock unavoidable: local-clock protocols diverge",
        "bench_e11_clock.py",
    ),
    ExperimentEntry(
        "E12", "Abstract",
        "competitive-ratio spectrum: constant ... O(log^2 m)",
        "bench_e12_summary.py",
    ),
    ExperimentEntry(
        "A1", "Section 4 design",
        "ablation: clean-up phase off — failed packets never drain",
        "bench_a1_no_cleanup.py",
    ),
    ExperimentEntry(
        "A3", "Section 5 design",
        "ablation: random shift off — bursts overload phase 1",
        "bench_a3_no_shift.py",
    ),
    ExperimentEntry(
        "X1", "Section 9",
        "extension: iid transmission loss, budgets scaled by 1/(1-p)",
        "bench_x1_unreliable.py",
    ),
    ExperimentEntry(
        "X2", "Related work [40]",
        "extension: Tassiulas-Ephremides max-weight comparator",
        "bench_x2_max_weight.py",
    ),
    ExperimentEntry(
        "X3", "Section 9",
        "extension: (window, sigma)-bounded jammer, budgets by 1/(1-sigma)",
        "bench_x3_jamming.py",
    ),
    ExperimentEntry(
        "X4", "Section 9",
        "extension: Rayleigh block fading, closed form + budget adjustment",
        "bench_x4_fading.py",
    ),
    ExperimentEntry(
        "X5", "Section 6.1 open problem",
        "extension: HM-style adaptive scheduler — constant-f bound, "
        "25x certified rate",
        "bench_x5_hm.py",
    ),
    ExperimentEntry(
        "X6", "Section 2.1 robustness",
        "extension: Markov-burst and Poisson-batch injection at the "
        "iid-equivalent rate",
        "bench_x6_markov.py",
    ),
    ExperimentEntry(
        "P1", "Performance",
        "vectorized slot kernel: >= 3x slots/sec over the scalar slot "
        "loop on 500 links",
        "bench_p1_slot_kernel.py",
    ),
    ExperimentEntry(
        "P2", "Performance",
        "struct-of-arrays packet layer: >= 2x frames/sec over the "
        "object-per-packet protocol path on a 1520-link grid",
        "bench_p2_packet_store.py",
    ),
    ExperimentEntry(
        "P3", "Performance",
        "sharded sweep executor: process-parallel (rate, seed) cells, "
        "record-identical to serial; >= 2x throughput at 4 workers",
        "bench_p3_sharded_sweep.py",
    ),
    ExperimentEntry(
        "P4", "Performance",
        "fused run-loop backends: >= 1.5x slots/sec over the per-slot "
        "kernel path on the 500-link KV headline (>= 3x with numba), "
        "bit-identical to the scalar reference",
        "bench_p4_runloop.py",
    ),
    ExperimentEntry(
        "P5", "Performance",
        "scenario fleet runner: process-per-network execution of "
        "declarative ScenarioSpecs, record-identical to serial; "
        ">= 2x throughput at 4 workers",
        "bench_p5_fleet.py",
    ),
    ExperimentEntry(
        "P6", "Robustness",
        "checkpointed execution: interrupt+resume bit-identical, "
        "<= ~5% overhead at the default snapshot interval",
        "bench_p6_checkpoint.py",
    ),
    ExperimentEntry(
        "P7", "Performance",
        "streaming metrics retention: horizon-independent peak RSS at "
        "a 1e6-frame horizon, exact-field parity with full retention, "
        ">= 0.95x throughput",
        "bench_p7_streaming.py",
    ),
    ExperimentEntry(
        "P8", "Performance",
        "campaign frontier bisection: locates a cell's stable-rate "
        "boundary in >= 2x fewer simulations than a fixed rate grid "
        "at equal resolution, agreeing within one tolerance",
        "bench_p8_campaign.py",
    ),
    ExperimentEntry(
        "P9", "Performance",
        "batched fleet kernel: many small networks advanced in one "
        "fused wave loop, bit-identical to serial; >= 2x fleet "
        "frames/sec over serial on a single core",
        "bench_p9_batched_fleet.py",
    ),
    ExperimentEntry(
        "P10", "Performance",
        "compiled wave engine: SINR gain-table evaluator in the numba "
        "lane (>= 2x over fused numpy on the 500-link stability run) "
        "and a batch-JIT fleet driver (>= 1.3x over the numpy wave "
        "engine), both bit-identical to serial",
        "bench_p10_compiled_wave.py",
    ),
]


def experiment_ids() -> List[str]:
    return [entry.id for entry in EXPERIMENTS]


# ----------------------------------------------------------------------
# Named sweep-cell builders (see repro.sim.sharding)
# ----------------------------------------------------------------------
#
# Every builder derives all of its randomness from the cell's own seed
# (child-seeded per cell), so a cell's outcome is a pure function of
# (builder kwargs, rate, seed) — independent of which process runs it
# or what ran before it. Scenario construction is deterministic in
# (model, nodes) and scenario objects hold no per-run state (scheduler
# state lives in run locals), so cells in one process share a cached
# build instead of re-running BFS routing per cell.


@lru_cache(maxsize=16)
def _scenario(model: str, nodes: int):
    return build_scenario(model, nodes, 0)


@register_protocol_builder("scenario-protocol")
def scenario_protocol(
    rate: float,
    seed: int,
    *,
    model: str,
    nodes: int,
    t_scale: float = 0.001,
):
    """The ``sweep`` command's protocol: a scenario preset, rate-capped
    at the scenario's certified rate (sweeps deliberately push the
    injection rate past what the protocol is provisioned for)."""
    scenario = _scenario(model, nodes)
    return DynamicProtocol(
        scenario.model,
        scenario.algorithm,
        min(rate, scenario.certified),
        t_scale=t_scale,
        rng=seed,
    )


@register_injection_builder("scenario-injection")
def scenario_injection(
    rate: float,
    seed: int,
    protocol,
    *,
    model: str,
    nodes: int,
    num_generators: int = 6,
):
    """The ``sweep`` command's injection: uniform over routed pairs of
    the same scenario preset, at the uncapped sweep rate."""
    scenario = _scenario(model, nodes)
    return uniform_pair_injection(
        scenario.routing,
        scenario.model,
        rate,
        num_generators=num_generators,
        rng=seed + 1000,
    )


#: The ``compare`` command's contenders: key -> (label, algorithm factory
#: over m). Keys name the algorithm inside compare-contender cells.
COMPARE_CONTENDERS = [
    ("decay", "decay [Thm 19] + transform"),
    ("kv", "KV [33] + transform"),
    ("hm", "HM-style [26] (native)"),
]

_COMPARE_ALGORITHMS = {
    "decay": lambda m: TransformedAlgorithm(
        DecayScheduler(), m=m, chi_scale=0.05
    ),
    "kv": lambda m: TransformedAlgorithm(KvScheduler(), m=m, chi_scale=0.05),
    "hm": lambda m: HmScheduler(),
}


def compare_algorithm(key: str, m: int):
    """Build one compare contender's static algorithm for network size m."""
    if key not in _COMPARE_ALGORITHMS:
        raise ConfigurationError(
            f"unknown compare algorithm '{key}'; choose from "
            f"{', '.join(sorted(_COMPARE_ALGORITHMS))}"
        )
    return _COMPARE_ALGORITHMS[key](m)


def compare_certified(m: int, key: str) -> float:
    """The certified rate a compare contender runs relative to, on a
    network of size ``m`` (callers already hold the network)."""
    return certified_rate(compare_algorithm(key, m), m)


@register_pair_builder("compare-contender")
def compare_contender(
    rate: float,
    seed: int,
    *,
    nodes: int,
    algorithm: str,
    num_generators: int = 8,
    t_scale: float = 0.001,
):
    """One ``compare`` cell: a contender on the shared linear-power SINR
    network, store-mode protocol sharing the injection's PacketStore
    (which is why this is a pair builder — the two must be built
    together)."""
    net = random_sinr_network(nodes, rng=seed)
    model = linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)
    routing = build_routing_table(net)
    injection = uniform_pair_injection(
        routing, model, rate, num_generators=num_generators, rng=seed + 1000
    )
    protocol = DynamicProtocol(
        model,
        compare_algorithm(algorithm, net.size_m),
        rate,
        t_scale=t_scale,
        rng=seed,
        store=injection.store,
    )
    return protocol, injection


__all__ = [
    "ExperimentEntry",
    "EXPERIMENTS",
    "experiment_ids",
    "COMPARE_CONTENDERS",
    "compare_algorithm",
    "compare_certified",
    "compare_contender",
    "scenario_injection",
    "scenario_protocol",
]

