"""The experiment inventory: every reproduced claim, as data.

One row per experiment in EXPERIMENTS.md. The CLI prints this table;
tests assert that every listed bench file exists so the registry cannot
drift from the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproduced claim and where to regenerate it."""

    id: str
    paper_ref: str
    claim: str
    bench_file: str


EXPERIMENTS: List[ExperimentEntry] = [
    ExperimentEntry(
        "E1", "Theorem 1",
        "Algorithm-1 transformation makes schedule length linear in I",
        "bench_e1_transform.py",
    ),
    ExperimentEntry(
        "E2", "Theorem 3",
        "two-phase frames: queues bounded below provisioning, diverge above",
        "bench_e2_stability.py",
    ),
    ExperimentEntry(
        "E3", "Theorem 8",
        "expected latency O(d*T), linear in path length",
        "bench_e3_latency.py",
    ),
    ExperimentEntry(
        "E4", "Theorem 11",
        "random shift stabilises all (w, lambda)-bounded adversaries",
        "bench_e4_adversarial.py",
    ),
    ExperimentEntry(
        "E5", "Corollary 12",
        "linear power: constant-competitive (feasible measure flat in m)",
        "bench_e5_linear_power.py",
    ),
    ExperimentEntry(
        "E6", "Corollary 13",
        "monotone sub-linear power: O(log^2 m)-competitive",
        "bench_e6_sublinear_power.py",
    ),
    ExperimentEntry(
        "E7", "Corollary 14",
        "free power control: O(log m) fading / O(log^2 m) general",
        "bench_e7_power_control.py",
    ),
    ExperimentEntry(
        "E8", "Lemma 15 / Cor. 16",
        "symmetric MAC: (1+delta)e*n + O(log^2 n) slots; stable below 1/e",
        "bench_e8_mac_symmetric.py",
    ),
    ExperimentEntry(
        "E9", "Lemma 17 / Cor. 18",
        "Round-Robin-Withholding: exactly n + m slots; stable below 1",
        "bench_e9_mac_roundrobin.py",
    ),
    ExperimentEntry(
        "E10", "Theorem 19 / Sec. 7.2",
        "conflict graphs: O(I log n) slots; rho caps achievable rates",
        "bench_e10_conflict.py",
    ),
    ExperimentEntry(
        "E11", "Theorem 20 / Figure 1",
        "global clock unavoidable: local-clock protocols diverge",
        "bench_e11_clock.py",
    ),
    ExperimentEntry(
        "E12", "Abstract",
        "competitive-ratio spectrum: constant ... O(log^2 m)",
        "bench_e12_summary.py",
    ),
    ExperimentEntry(
        "A1", "Section 4 design",
        "ablation: clean-up phase off — failed packets never drain",
        "bench_a1_no_cleanup.py",
    ),
    ExperimentEntry(
        "A3", "Section 5 design",
        "ablation: random shift off — bursts overload phase 1",
        "bench_a3_no_shift.py",
    ),
    ExperimentEntry(
        "X1", "Section 9",
        "extension: iid transmission loss, budgets scaled by 1/(1-p)",
        "bench_x1_unreliable.py",
    ),
    ExperimentEntry(
        "X2", "Related work [40]",
        "extension: Tassiulas-Ephremides max-weight comparator",
        "bench_x2_max_weight.py",
    ),
    ExperimentEntry(
        "X3", "Section 9",
        "extension: (window, sigma)-bounded jammer, budgets by 1/(1-sigma)",
        "bench_x3_jamming.py",
    ),
    ExperimentEntry(
        "X4", "Section 9",
        "extension: Rayleigh block fading, closed form + budget adjustment",
        "bench_x4_fading.py",
    ),
    ExperimentEntry(
        "X5", "Section 6.1 open problem",
        "extension: HM-style adaptive scheduler — constant-f bound, "
        "25x certified rate",
        "bench_x5_hm.py",
    ),
    ExperimentEntry(
        "X6", "Section 2.1 robustness",
        "extension: Markov-burst and Poisson-batch injection at the "
        "iid-equivalent rate",
        "bench_x6_markov.py",
    ),
    ExperimentEntry(
        "P1", "Performance",
        "vectorized slot kernel: >= 3x slots/sec over the scalar slot "
        "loop on 500 links",
        "bench_p1_slot_kernel.py",
    ),
    ExperimentEntry(
        "P2", "Performance",
        "struct-of-arrays packet layer: >= 2x frames/sec over the "
        "object-per-packet protocol path on a 1520-link grid",
        "bench_p2_packet_store.py",
    ),
]


def experiment_ids() -> List[str]:
    return [entry.id for entry in EXPERIMENTS]


__all__ = ["ExperimentEntry", "EXPERIMENTS", "experiment_ids"]
