"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user the core loops of the library without writing
code: inspect topologies, run a dynamic-protocol simulation on a model
preset, sweep injection rates across the stability boundary, and list
the paper-experiment inventory.
"""

from repro.cli.main import main

__all__ = ["main"]
