"""Scenario presets shared by the CLI commands — thin adapters.

A *scenario* bundles what every simulation needs: a network, the
interference model over it, a static algorithm with a usable
``f(m) I + g(m, n)`` bound, the routing table, and the certified
injection rate. The presets mirror the benchmark families:

===============  ====================================================
``packet-routing``  grid network, identity ``W``, single-hop scheduler
``sinr-linear``     random geometric net, linear power (Corollary 12)
``sinr-sqrt``       same net, square-root power (Corollary 13)
``mac``             multiple-access channel, Round-Robin-Withholding
``conflict``        grid disk graph, node-constraint conflicts
===============  ====================================================

Since the declarative scenario layer landed, this module *describes*
nothing itself: presets are :class:`~repro.scenario.spec.ScenarioSpec`
templates (:mod:`repro.scenario.presets`), topologies resolve through
the unified component registry (:mod:`repro.scenario.registry`), and
the functions here only adapt both to the CLI's historical
``(name, nodes, seed)`` call shape — construction is bit-compatible
with the old imperative path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.interference.base import InterferenceModel
from repro.network.network import Network
from repro.network.routing import RoutingTable
from repro.scenario.presets import PRESETS, preset_names, preset_spec
from repro.scenario.registry import resolve as resolve_component
from repro.staticsched.base import StaticAlgorithm


@dataclass
class Scenario:
    """Everything a CLI simulation needs, pre-wired."""

    name: str
    network: Network
    model: InterferenceModel
    algorithm: StaticAlgorithm
    routing: RoutingTable
    certified: float

    @property
    def m(self) -> int:
        return self.network.size_m


def _build_preset(name: str, nodes: int, seed: int) -> Scenario:
    built = preset_spec(name, nodes=nodes, seed=seed).build(
        with_protocol=False
    )
    return Scenario(
        name=name,
        network=built.network,
        model=built.model,
        algorithm=built.algorithm,
        routing=built.routing,
        certified=built.certified,
    )


#: Preset name -> ``(nodes, seed) -> Scenario`` adapter (kept for
#: callers that iterate the table; new code should prefer
#: ``repro.scenario.preset_spec``).
SCENARIOS: Dict[str, Callable[[int, int], Scenario]] = {
    name: (lambda nodes, seed, _name=name: _build_preset(_name, nodes, seed))
    for name in PRESETS
}


def scenario_names() -> List[str]:
    """The preset names, in presentation order."""
    return preset_names()


def build_scenario(name: str, nodes: int, seed: int) -> Scenario:
    """Build one preset; raises on unknown names or bad sizes."""
    if name not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario '{name}'; choose from {', '.join(SCENARIOS)}"
        )
    return _build_preset(name, nodes, seed)


def _grid_side(nodes: int) -> int:
    from repro.scenario.presets import _grid_side as side

    return side(nodes)


#: CLI topology kind -> registry component name + ``nodes`` mapping.
_TOPOLOGY_ARGS: Dict[str, Callable[[int, int], tuple]] = {
    "random": lambda nodes, seed: ("random", {"num_nodes": nodes,
                                              "seed": seed}),
    "grid": lambda nodes, seed: ("grid", {"rows": _grid_side(nodes),
                                          "cols": _grid_side(nodes)}),
    "line": lambda nodes, seed: ("line", {"num_nodes": nodes}),
    "star": lambda nodes, seed: ("star", {"leaves": max(1, nodes - 1)}),
    "mac": lambda nodes, seed: ("mac", {"num_stations": max(2, nodes)}),
    "figure1": lambda nodes, seed: ("figure1", {"m": max(2, nodes)}),
}

#: Kept for callers that iterate the table; resolves through the
#: unified registry like everything else.
TOPOLOGIES: Dict[str, Callable[[int, int], Network]] = {
    name: (lambda nodes, seed, _name=name: build_topology(_name, nodes, seed))
    for name in _TOPOLOGY_ARGS
}


def topology_names() -> List[str]:
    return list(_TOPOLOGY_ARGS)


def build_topology(kind: str, nodes: int, seed: int) -> Network:
    """Build one topology; raises on unknown kinds."""
    if kind not in _TOPOLOGY_ARGS:
        raise ConfigurationError(
            f"unknown topology '{kind}'; choose from "
            f"{', '.join(_TOPOLOGY_ARGS)}"
        )
    if nodes < 2:
        raise ConfigurationError(f"nodes must be >= 2, got {nodes}")
    component, kwargs = _TOPOLOGY_ARGS[kind](nodes, seed)
    return resolve_component("topology", component)(**kwargs)


__all__ = [
    "Scenario",
    "SCENARIOS",
    "TOPOLOGIES",
    "build_scenario",
    "build_topology",
    "scenario_names",
    "topology_names",
]
