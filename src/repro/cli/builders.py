"""Scenario presets shared by the CLI commands.

A *scenario* bundles what every simulation needs: a network, the
interference model over it, a static algorithm with a usable
``f(m) I + g(m, n)`` bound, the routing table, and the certified
injection rate. The presets mirror the benchmark families:

===============  ====================================================
``packet-routing``  grid network, identity ``W``, single-hop scheduler
``sinr-linear``     random geometric net, linear power (Corollary 12)
``sinr-sqrt``       same net, square-root power (Corollary 13)
``mac``             multiple-access channel, Round-Robin-Withholding
``conflict``        grid disk graph, node-constraint conflicts
===============  ====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.competitive import certified_rate
from repro.core.transform import TransformedAlgorithm
from repro.errors import ConfigurationError
from repro.interference.base import InterferenceModel
from repro.interference.builders import node_constraint_conflicts
from repro.interference.conflict import ConflictGraphModel
from repro.interference.mac import MultipleAccessChannel
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.network import Network
from repro.network.routing import RoutingTable, build_routing_table
from repro.network.topology import (
    figure1_instance,
    grid_network,
    line_network,
    mac_network,
    random_sinr_network,
    star_network,
)
from repro.sinr.power import SquareRootPower
from repro.sinr.weights import linear_power_model, monotone_power_model
from repro.staticsched.base import StaticAlgorithm
from repro.staticsched.decay import DecayScheduler
from repro.staticsched.kv import KvScheduler
from repro.staticsched.round_robin import RoundRobinScheduler
from repro.staticsched.single_hop import SingleHopScheduler


@dataclass
class Scenario:
    """Everything a CLI simulation needs, pre-wired."""

    name: str
    network: Network
    model: InterferenceModel
    algorithm: StaticAlgorithm
    routing: RoutingTable
    certified: float

    @property
    def m(self) -> int:
        return self.network.size_m


def _grid_side(nodes: int) -> int:
    return max(2, int(round(math.sqrt(nodes))))


def _packet_routing(nodes: int, seed: int) -> Scenario:
    side = _grid_side(nodes)
    net = grid_network(side, side)
    model = PacketRoutingModel(net)
    algorithm = SingleHopScheduler()
    return Scenario(
        name="packet-routing",
        network=net,
        model=model,
        algorithm=algorithm,
        routing=build_routing_table(net),
        certified=certified_rate(algorithm, net.size_m),
    )


def _sinr_linear(nodes: int, seed: int) -> Scenario:
    net = random_sinr_network(nodes, rng=seed)
    model = linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)
    algorithm = TransformedAlgorithm(
        DecayScheduler(), m=net.size_m, chi_scale=0.05
    )
    return Scenario(
        name="sinr-linear",
        network=net,
        model=model,
        algorithm=algorithm,
        routing=build_routing_table(net),
        certified=certified_rate(algorithm, net.size_m),
    )


def _sinr_sqrt(nodes: int, seed: int) -> Scenario:
    net = random_sinr_network(nodes, rng=seed)
    model = monotone_power_model(
        net, SquareRootPower(), alpha=3.0, beta=1.0, noise=0.02
    )
    algorithm = TransformedAlgorithm(
        KvScheduler(), m=net.size_m, chi_scale=0.05
    )
    return Scenario(
        name="sinr-sqrt",
        network=net,
        model=model,
        algorithm=algorithm,
        routing=build_routing_table(net),
        certified=certified_rate(algorithm, net.size_m),
    )


def _mac(nodes: int, seed: int) -> Scenario:
    net = mac_network(max(2, nodes))
    model = MultipleAccessChannel(net)
    algorithm = RoundRobinScheduler()
    return Scenario(
        name="mac",
        network=net,
        model=model,
        algorithm=algorithm,
        routing=build_routing_table(net),
        certified=certified_rate(algorithm, net.size_m),
    )


def _conflict(nodes: int, seed: int) -> Scenario:
    side = _grid_side(nodes)
    net = grid_network(side, side)
    model = ConflictGraphModel(net, node_constraint_conflicts(net))
    algorithm = TransformedAlgorithm(
        DecayScheduler(), m=net.size_m, chi_scale=0.05
    )
    return Scenario(
        name="conflict",
        network=net,
        model=model,
        algorithm=algorithm,
        routing=build_routing_table(net),
        certified=certified_rate(algorithm, net.size_m),
    )


SCENARIOS: Dict[str, Callable[[int, int], Scenario]] = {
    "packet-routing": _packet_routing,
    "sinr-linear": _sinr_linear,
    "sinr-sqrt": _sinr_sqrt,
    "mac": _mac,
    "conflict": _conflict,
}


def scenario_names() -> List[str]:
    """The preset names, in presentation order."""
    return list(SCENARIOS)


def build_scenario(name: str, nodes: int, seed: int) -> Scenario:
    """Build one preset; raises on unknown names or bad sizes."""
    if name not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario '{name}'; choose from {', '.join(SCENARIOS)}"
        )
    if nodes < 2:
        raise ConfigurationError(f"nodes must be >= 2, got {nodes}")
    return SCENARIOS[name](nodes, seed)


TOPOLOGIES: Dict[str, Callable[[int, int], Network]] = {
    "random": lambda nodes, seed: random_sinr_network(nodes, rng=seed),
    "grid": lambda nodes, seed: grid_network(
        _grid_side(nodes), _grid_side(nodes)
    ),
    "line": lambda nodes, seed: line_network(nodes),
    "star": lambda nodes, seed: star_network(max(1, nodes - 1)),
    "mac": lambda nodes, seed: mac_network(max(2, nodes)),
    "figure1": lambda nodes, seed: figure1_instance(max(2, nodes)),
}


def topology_names() -> List[str]:
    return list(TOPOLOGIES)


def build_topology(kind: str, nodes: int, seed: int) -> Network:
    """Build one topology; raises on unknown kinds."""
    if kind not in TOPOLOGIES:
        raise ConfigurationError(
            f"unknown topology '{kind}'; choose from {', '.join(TOPOLOGIES)}"
        )
    if nodes < 2:
        raise ConfigurationError(f"nodes must be >= 2, got {nodes}")
    return TOPOLOGIES[kind](nodes, seed)


__all__ = [
    "Scenario",
    "SCENARIOS",
    "TOPOLOGIES",
    "build_scenario",
    "build_topology",
    "scenario_names",
    "topology_names",
]
