"""Argument parsing and the CLI commands.

``python -m repro <command>``:

* ``info`` — version, model presets, experiment count.
* ``topology`` — generate a topology and describe it.
* ``scenarios`` — every registered scenario component + signature.
* ``simulate`` — one protocol run on a preset; metrics + verdict.
* ``sweep`` — rate sweep across the stability boundary.
* ``compare`` — static algorithms side by side on one network.
* ``fleet`` — a multi-network scenario fleet, one process per network.
* ``campaign`` — cross-product scenario grid with a stability-frontier
  bisection per cell; JSON document + ascii phase diagram.
* ``backends`` — the live compiled-lane support matrix (which
  scheduler × evaluator pairs run JIT-compiled right now, and why).
* ``experiments`` — the reproduced-claim inventory.

Every command writes plain text to stdout and returns a process exit
code (0 success, 2 usage error), so scripting against the CLI is
straightforward.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import repro
from repro.cli.builders import (
    build_scenario,
    build_topology,
    scenario_names,
    topology_names,
)
from repro.cli.registry import (
    COMPARE_CONTENDERS,
    EXPERIMENTS,
    compare_certified,
)
from repro.errors import ReproError
from repro.scenario import registry as component_registry
from repro.scenario.fleet import load_specs, run_scenario_fleet
from repro.scenario.presets import preset_spec
from repro.sim.sharding import CellSpec, executor_names, make_executor
from repro.staticsched.runloop import (
    BACKENDS,
    available_backends,
    use_backend,
)


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    """The run-loop backend knob shared by the simulation commands."""
    parser.add_argument(
        "--backend",
        default="auto",
        choices=BACKENDS,
        help=(
            "run-loop backend for the slot loop: 'auto' picks the "
            "numba-compiled backend when numba is installed and the "
            "fused numpy backend otherwise; 'scalar' pins the "
            "ground-truth reference. Every backend produces identical "
            "results from one seed — the choice only changes speed"
        ),
    )


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    """The sharding knobs shared by the sweep-shaped commands."""
    parser.add_argument(
        "--executor",
        default="serial",
        choices=executor_names(),
        help=(
            "how to run the (rate, seed) cells: in-process, or sharded "
            "across worker processes (identical records either way)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-executor worker count (default: available CPUs)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Dynamic packet scheduling in wireless networks "
            "(Kesselheim, PODC 2012) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and experiment overview")

    topo = sub.add_parser("topology", help="generate and describe a topology")
    topo.add_argument("--kind", default="random", choices=topology_names())
    topo.add_argument("--nodes", type=int, default=12)
    topo.add_argument("--seed", type=int, default=0)
    topo.add_argument(
        "--links", type=int, default=8, help="how many links to list"
    )

    sub.add_parser(
        "scenarios",
        help="list every registered scenario component with its "
             "parameter signature (the spec-file authoring reference)",
    )

    simulate = sub.add_parser(
        "simulate", help="run the dynamic protocol on a model preset"
    )
    simulate.add_argument("--model", default="packet-routing",
                          choices=scenario_names())
    simulate.add_argument("--nodes", type=int, default=12)
    simulate.add_argument(
        "--frames",
        type=int,
        default=200,
        help="simulation horizon; longer runs give sharper verdicts",
    )
    simulate.add_argument(
        "--rate-fraction",
        type=float,
        default=0.5,
        help="injection rate as a fraction of the certified rate",
    )
    simulate.add_argument("--generators", type=int, default=6)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--t-scale",
        type=float,
        default=0.001,
        help="scale on the paper's frame-length constants",
    )
    _add_backend_argument(simulate)
    simulate.add_argument(
        "--metrics",
        default="full",
        choices=("full", "streaming"),
        help="metrics retention: 'full' keeps per-frame history, "
             "'streaming' runs in bounded memory (O(window) state)",
    )
    simulate.add_argument(
        "--trace",
        action="store_true",
        help="record per-packet events and print a summary",
    )
    simulate.add_argument(
        "--check",
        action="store_true",
        help="run queueing cross-checks (Little's law, bootstrap drift CI)",
    )

    sweep = sub.add_parser(
        "sweep", help="sweep injection rates across the stability boundary"
    )
    sweep.add_argument("--model", default="packet-routing",
                       choices=scenario_names())
    sweep.add_argument("--nodes", type=int, default=12)
    sweep.add_argument(
        "--frames",
        type=int,
        default=300,
        help="horizon per cell; longer runs give sharper verdicts",
    )
    sweep.add_argument(
        "--fractions",
        default="0.25,0.5,0.75,1.0",
        help="comma-separated fractions of the certified rate",
    )
    sweep.add_argument("--seeds", default="0,1", help="comma-separated seeds")
    sweep.add_argument("--t-scale", type=float, default=0.001)
    sweep.add_argument(
        "--metrics",
        default="full",
        choices=("full", "streaming"),
        help="metrics retention for every cell (streaming = bounded "
             "memory per cell)",
    )
    _add_backend_argument(sweep)
    _add_executor_arguments(sweep)

    compare = sub.add_parser(
        "compare",
        help="compare static algorithms on one SINR network "
             "(certified rates + short stability runs)",
    )
    compare.add_argument("--nodes", type=int, default=14)
    compare.add_argument("--frames", type=int, default=60)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--rate-fraction",
        type=float,
        default=0.5,
        help="run each protocol at this fraction of its own certified rate",
    )
    _add_backend_argument(compare)
    _add_executor_arguments(compare)

    fleet = sub.add_parser(
        "fleet",
        help="run a multi-network scenario fleet "
             "(one process per network with --executor process)",
    )
    fleet.add_argument(
        "--spec",
        default=None,
        help="JSON spec file: one ScenarioSpec object, a list of them, "
             'or {"specs": [...]}; omit to generate presets instead',
    )
    fleet.add_argument(
        "--model",
        default="packet-routing",
        choices=scenario_names(),
        help="preset for generated fleets (ignored with --spec)",
    )
    fleet.add_argument("--nodes", type=int, default=12)
    fleet.add_argument(
        "--networks",
        type=int,
        default=4,
        help="how many networks to generate (seeds seed, seed+1, ...)",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--frames",
        type=int,
        default=120,
        help="horizon per network (generated fleets only)",
    )
    fleet.add_argument(
        "--rate-fraction",
        type=float,
        default=0.5,
        help="injection rate as a fraction of each network's certified "
             "rate (generated fleets only)",
    )
    fleet.add_argument(
        "--backend",
        default=None,
        choices=BACKENDS,
        help="override every spec's run-loop backend "
             "(default: respect the specs)",
    )
    fleet.add_argument(
        "--metrics",
        default=None,
        choices=("full", "streaming"),
        help="override every spec's metrics retention "
             "(default: respect the specs)",
    )
    _add_executor_arguments(fleet)
    fault = fleet.add_argument_group(
        "fault tolerance",
        "any of these switches the fleet onto the resilient executor "
        "(retry with backoff, crash quarantine, durable manifest); "
        "e.g. `repro fleet --checkpoint-dir runs/f1` then, after an "
        "interruption, `repro fleet --checkpoint-dir runs/f1 --resume`",
    )
    fault.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for the fleet manifest and per-cell simulation "
             "checkpoints (enables crash-durable execution)",
    )
    fault.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already completed in --checkpoint-dir's manifest "
             "and resume unfinished ones from their last snapshot",
    )
    fault.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per cell for transient failures (default: 2)",
    )
    fault.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per cell; a wedged cell is killed and "
             "retried (default: unlimited)",
    )
    fault.add_argument(
        "--snapshot-interval",
        type=int,
        default=None,
        metavar="FRAMES",
        help="frames between simulation checkpoints inside each cell "
             "(default: 50; needs --checkpoint-dir)",
    )

    campaign = sub.add_parser(
        "campaign",
        help="survey a cross-product scenario grid: bisect each cell's "
             "stable-rate frontier, render an ascii phase diagram",
    )
    campaign.add_argument(
        "--spec",
        required=True,
        help="JSON campaign file: axes (topology/model/scheduler/"
             "injection), seeds, frames, search range — see "
             "repro.scenario.CampaignSpec",
    )
    campaign.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the JSON frontier document here "
             "(deterministic: no timestamps, bit-identical across "
             "executors and resume)",
    )
    campaign.add_argument(
        "--backend",
        default=None,
        choices=BACKENDS,
        help="override every probe's run-loop backend "
             "(default: respect the campaign's base)",
    )
    campaign.add_argument(
        "--metrics",
        default=None,
        choices=("full", "streaming"),
        help="override every probe's metrics retention ('streaming' "
             "caps per-probe memory at O(window) for long horizons)",
    )
    _add_executor_arguments(campaign)
    campaign.add_argument(
        "--checkpoint-dir",
        default=None,
        help="journal every completed probe into a fleet manifest "
             "here (enables --resume after an interruption)",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="recover probes already journalled in --checkpoint-dir's "
             "manifest instead of re-simulating them",
    )

    sub.add_parser(
        "backends",
        help="print the live compiled-lane support matrix "
             "(scheduler × evaluator → numba/numpy) and gate verdicts",
    )

    sub.add_parser("experiments", help="list the reproduced paper claims")

    return parser


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {repro.__version__} — Kesselheim, PODC 2012 reproduction")
    print()
    print("model presets: " + ", ".join(scenario_names()))
    print("topologies:    " + ", ".join(topology_names()))
    print("backends:      " + ", ".join(available_backends())
          + " (--backend; 'numba' silently falls back to 'numpy' "
          "when numba is not installed)")
    print(f"experiments:   {len(EXPERIMENTS)} "
          "(run `python -m repro experiments`)")
    print("scenario specs: `python -m repro scenarios` lists every "
          "component; `python -m repro fleet` runs multi-network fleets")
    print()
    print("quickstart:    python -m repro simulate --model sinr-linear "
          "--nodes 15 --frames 100")
    return 0


def cmd_topology(args: argparse.Namespace) -> int:
    net = build_topology(args.kind, args.nodes, args.seed)
    print(f"topology '{args.kind}': {net.num_nodes} nodes, "
          f"{net.num_links} links, m = {net.size_m}")
    print(f"geometric: {net.is_geometric}")
    lengths = net.link_lengths() if net.is_geometric else None
    rows = []
    for link in net.links[: max(0, args.links)]:
        length = f"{lengths[link.id]:.3f}" if lengths is not None else "-"
        rows.append([link.id, link.sender, link.receiver, length])
    if rows:
        print(repro.format_table(["link", "sender", "receiver", "length"],
                                 rows))
    if net.num_links > args.links:
        print(f"... and {net.num_links - args.links} more links")
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """The spec-file authoring reference: components + signatures."""
    print("scenario components (spec files name these; see "
          "repro.scenario.ScenarioSpec):")
    for kind in ("topology", "model", "scheduler", "injection"):
        print()
        print(f"{kind}:")
        for name in component_registry.names(kind):
            print(f"  {component_registry.signature(kind, name)}")
            description = component_registry.describe(kind, name)
            if description:
                print(f"      {description}")
    print()
    print("backend: " + ", ".join(BACKENDS)
          + " (spec field 'backend'; every backend is bit-identical, "
          "the choice only changes speed)")
    print("executors: " + ", ".join(executor_names())
          + " (`--executor` on sweep/fleet/campaign; 'batched' advances "
          "many small\nnetworks through one in-process wave engine — "
          "records stay bit-identical)")
    print("presets: " + ", ".join(scenario_names())
          + " (repro.scenario.preset_spec / `repro fleet --model`)")
    print()
    print("campaigns: cross-product grids over these components with a "
          "stability-frontier\nbisection per cell — `repro campaign "
          "--spec FILE` (see repro.scenario.CampaignSpec\nfor the file "
          "shape; every axis entry names a component above)")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run a fleet of networks; per-network records + summary."""
    if args.spec is not None:
        specs = load_specs(args.spec)
        source = f"spec file {args.spec}"
    else:
        if args.networks < 1:
            print(f"error: --networks must be >= 1, got {args.networks}",
                  file=sys.stderr)
            return 2
        specs = [
            preset_spec(
                args.model,
                nodes=args.nodes,
                seed=args.seed + offset,
                frames=args.frames,
                rate=args.rate_fraction,
            )
            for offset in range(args.networks)
        ]
        source = (f"preset '{args.model}' x {args.networks} networks "
                  f"(seeds {args.seed}..{args.seed + args.networks - 1})")
    if args.backend is not None:
        specs = [spec.replace(backend=args.backend) for spec in specs]
    if args.metrics is not None:
        specs = [spec.replace(metrics=args.metrics) for spec in specs]

    resilient = any(
        value is not None
        for value in (
            args.checkpoint_dir,
            args.max_retries,
            args.cell_timeout,
            args.snapshot_interval,
        )
    ) or args.resume
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume needs --checkpoint-dir (the manifest to "
              "resume from)", file=sys.stderr)
        return 2
    if resilient:
        from repro.sim.resilience import run_resilient_fleet

        outcome = run_resilient_fleet(
            specs,
            workers=args.workers,
            max_retries=(
                args.max_retries if args.max_retries is not None else 2
            ),
            cell_timeout=args.cell_timeout,
            manifest_dir=args.checkpoint_dir,
            resume=args.resume,
            snapshot_interval=args.snapshot_interval,
        )
        executor_label = "resilient"
        records = [r for r in outcome.records if r is not None]
        pairs = [
            (spec, record)
            for spec, record in zip(specs, outcome.records)
            if record is not None
        ]
    else:
        outcome = None
        executor_label = args.executor
        result = run_scenario_fleet(
            specs, make_executor(args.executor, args.workers)
        )
        records = result.records
        pairs = list(zip(specs, result.records))
    print(f"fleet: {source}, {len(specs)} network(s), "
          f"executor '{executor_label}'")
    rows = []
    for spec, record in pairs:
        rows.append(
            [
                record.rate_index,
                spec.name or spec.topology,
                record.seed,
                f"{record.rate:.4g}",
                record.injected,
                record.delivered,
                f"{record.tail_queue:.1f}",
                f"{record.throughput:.3f}",
                f"{record.latency:.0f}",
                record.verdict.stable,
            ]
        )
    print(repro.format_table(
        ["#", "scenario", "seed", "rate", "injected", "delivered",
         "tail queue", "throughput", "latency", "stable"],
        rows,
    ))
    summary = outcome.summary if outcome is not None else result.summary
    if summary is not None:
        print()
        print(f"summary over {summary.networks} network(s): "
              f"stable fraction {summary.stable_fraction:.2f}, "
              f"mean tail queue {summary.mean_tail_queue:.1f}, "
              f"mean throughput {summary.mean_throughput:.3f}, "
              f"mean latency {summary.mean_latency:.0f}, "
              f"injected {summary.total_injected}, "
              f"delivered {summary.total_delivered}")
    if outcome is not None:
        recovered = sum(
            1 for s in outcome.statuses if s.source == "manifest"
        )
        if recovered:
            print(f"resumed: {recovered} cell(s) recovered from the "
                  f"manifest, {len(specs) - recovered} run")
        for status in outcome.statuses:
            if status.state in ("failed", "quarantined"):
                last = status.failures[-1] if status.failures else "?"
                print(f"cell {status.index} {status.state} after "
                      f"{status.attempts} attempt(s): {last}",
                      file=sys.stderr)
        if not outcome.complete:
            return 1
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    scenario = build_scenario(args.model, args.nodes, args.seed)
    rate = args.rate_fraction * scenario.certified
    tracer = repro.Tracer() if args.trace else None
    injection = repro.uniform_pair_injection(
        scenario.routing,
        scenario.model,
        rate,
        num_generators=args.generators,
        rng=args.seed + 1000,
    )
    # Store mode: the protocol shares the injection's PacketStore, so
    # the engine feeds index arrays (bit-identical to the object path).
    protocol = repro.DynamicProtocol(
        scenario.model,
        scenario.algorithm,
        rate,
        t_scale=args.t_scale,
        rng=args.seed,
        tracer=tracer,
        store=injection.store,
    )
    if args.check and args.metrics == "streaming":
        # The queueing cross-checks (Little's law, bootstrap drift CI)
        # are whole-history computations by definition.
        print("error: --check needs full history; drop --metrics "
              "streaming", file=sys.stderr)
        return 2
    simulation = repro.FrameSimulation(
        protocol, injection, metrics=args.metrics
    )
    with use_backend(args.backend):
        simulation.run(args.frames)
    metrics = simulation.metrics

    print(f"scenario '{scenario.name}': {scenario.network.num_nodes} nodes, "
          f"m = {scenario.m}, frame length {protocol.frame_length}")
    print(f"certified rate {scenario.certified:.4g}, "
          f"running at {args.rate_fraction:.2f}x = {rate:.4g}")
    print()
    verdict = metrics.stability_verdict(
        load_per_frame=max(1.0, metrics.injected_total / max(1, args.frames)),
    )
    summary = metrics.latency_summary(protocol.delivered)
    rows = [
        ["frames", args.frames],
        ["injected", metrics.injected_total],
        ["delivered", metrics.delivered_count()],
        ["failures", protocol.potential.total_failures],
        ["final queue", metrics.final_queue],
        ["tail mean queue", f"{metrics.mean_queue():.2f}"],
        ["throughput/frame", f"{metrics.throughput():.3f}"],
        ["mean latency (slots)", f"{summary.mean:.1f}"],
        ["stable", verdict.stable],
    ]
    print(repro.format_table(["metric", "value"], rows))
    print()
    # Full retention: the whole history. Streaming: the ring window
    # (newest `window` frames) — labelled so the plot is honest.
    series_label = (
        "queue series" if args.metrics == "full" else "queue series (window)"
    )
    print(series_label + ": " + repro.sparkline(metrics.recent_queue_series()))
    if args.check:
        print()
        # Trim the warm-up ramp: the CI should judge steady state, not
        # the pipeline filling up.
        tail = metrics.queue_series[len(metrics.queue_series) // 4 :]
        point, lower, upper = repro.drift_confidence_interval(
            tail, rng=args.seed
        )
        print(f"drift/frame (post-warm-up): {point:+.4f}, 95% CI "
              f"[{lower:+.4f}, {upper:+.4f}] -> contains 0: "
              f"{lower <= 0 <= upper}")
        if protocol.delivered:
            sojourns = [
                (p.delivered_at - p.injected_at) / protocol.frame_length
                for p in protocol.delivered
            ]
            report = repro.littles_law_check(
                metrics.queue_series, sojourns
            )
            print(f"Little's law: L = {report.mean_in_system:.2f} vs "
                  f"lambda*W = {report.predicted_in_system:.2f} "
                  f"(gap {report.relative_gap:.1%})")
    if tracer is not None:
        print()
        counts = tracer.counts()
        count_rows = [[kind.value, counts[kind]] for kind in sorted(counts)]
        print(repro.format_table(["event", "count"], count_rows))
        hotspots = tracer.failure_hotspots()
        if hotspots:
            print("failure hotspots (link, count): "
                  + ", ".join(f"({link}, {count})"
                              for link, count in hotspots))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    try:
        fractions = [float(x) for x in args.fractions.split(",") if x.strip()]
        seeds = [int(x) for x in args.seeds.split(",") if x.strip()]
    except ValueError as exc:
        print(f"error: bad --fractions/--seeds: {exc}", file=sys.stderr)
        return 2
    if not fractions or not seeds:
        print("error: empty --fractions or --seeds", file=sys.stderr)
        return 2

    scenario = build_scenario(args.model, args.nodes, 0)

    # The cells are registry-named specs (no closures), so the same
    # list runs in-process or across worker processes — with identical
    # records, which is why the printed table does not say which.
    rates = [fraction * scenario.certified for fraction in fractions]
    specs = repro.sweep_specs(
        rates,
        seeds,
        frames=args.frames,
        protocol="scenario-protocol",
        injection="scenario-injection",
        protocol_kwargs={
            "model": args.model,
            "nodes": args.nodes,
            "t_scale": args.t_scale,
        },
        injection_kwargs={"model": args.model, "nodes": args.nodes},
        requires=("repro.cli.registry",),
        backend=args.backend,
        metrics=args.metrics,
    )
    records = repro.run_sharded_sweep(
        specs, make_executor(args.executor, args.workers)
    )
    print(f"scenario '{scenario.name}': certified rate "
          f"{scenario.certified:.4g}, {len(seeds)} seed(s)")
    rows = []
    for fraction, record in zip(fractions, records):
        rows.append(
            [
                f"{fraction:.2f}x",
                f"{record.rate:.4g}",
                f"{record.stable_fraction:.2f}",
                f"{record.mean_tail_queue:.1f}",
                f"{record.mean_throughput:.3f}",
                f"{record.mean_latency:.0f}",
            ]
        )
    print(repro.format_table(
        ["fraction", "rate", "stable frac", "tail queue", "throughput",
         "latency"],
        rows,
    ))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Certified rates and short stability runs, one network, all algorithms."""
    net = repro.random_sinr_network(args.nodes, rng=args.seed)
    m = net.size_m
    # One cell per contender; each cell rebuilds the (deterministic)
    # network from the seed inside its worker and shares its injection's
    # PacketStore with the protocol, so the executor choice cannot
    # change any number in the table.
    specs = []
    certified_rates = []
    for index, (key, _) in enumerate(COMPARE_CONTENDERS):
        certified = compare_certified(m, key)
        certified_rates.append(certified)
        specs.append(
            CellSpec(
                rate=args.rate_fraction * certified,
                seed=args.seed,
                frames=args.frames,
                rate_index=index,
                pair="compare-contender",
                pair_kwargs={"nodes": args.nodes, "algorithm": key},
                load_from_injected=True,
                requires=("repro.cli.registry",),
                backend=args.backend,
            )
        )
    results = make_executor(args.executor, args.workers).map(specs)
    print(f"network: {net.num_nodes} nodes, m = {m}, linear-power SINR; "
          f"each protocol at {args.rate_fraction:.2f}x its certified rate")
    rows = []
    for (_, label), certified, result in zip(
        COMPARE_CONTENDERS, certified_rates, results
    ):
        rows.append(
            [
                label,
                f"{certified:.4g}",
                result.frame_length,
                result.injected,
                result.failures,
                f"{result.tail_queue:.1f}",
                result.verdict.stable,
            ]
        )
    print(repro.format_table(
        ["algorithm", "certified rate", "frame T", "injected", "failures",
         "tail queue", "stable"],
        rows,
    ))
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Survey a scenario grid: frontier table + phase diagram."""
    from repro.scenario.campaign import load_campaign, run_campaign

    if args.resume and args.checkpoint_dir is None:
        print("error: --resume needs --checkpoint-dir (the manifest to "
              "resume from)", file=sys.stderr)
        return 2
    spec = load_campaign(args.spec)
    result = run_campaign(
        spec,
        executor=make_executor(args.executor, args.workers),
        manifest_dir=args.checkpoint_dir,
        resume=args.resume,
        metrics=args.metrics,
        backend=args.backend,
    )
    search = spec.search
    print(f"campaign: {spec.name or args.spec}, "
          f"{len(result.cells)} cell(s) x {len(spec.seeds)} seed(s), "
          f"executor '{args.executor}'")
    print(f"search: rate in [{search.rate_low:g}, {search.rate_high:g}] "
          f"({search.rate_mode}), tolerance {search.tolerance:g}, "
          f"{spec.frames} frame(s) per probe")
    print()

    def fmt(value) -> str:
        return "-" if value is None else f"{value:.4g}"

    rows = []
    for cell in result.cells:
        labels = cell.labels
        rows.append(
            [
                cell.index,
                labels["topology"],
                labels["model"],
                labels["scheduler"],
                labels["injection"],
                cell.status if cell.converged else f"{cell.status}*",
                fmt(cell.lower),
                fmt(cell.upper),
                fmt(cell.frontier),
                cell.simulations,
            ]
        )
    print(repro.format_table(
        ["#", "topology", "model", "scheduler", "injection", "status",
         "lower", "upper", "frontier", "sims"],
        rows,
    ))
    if any(not cell.converged for cell in result.cells):
        print("* bracket wider than tolerance (max_rounds hit)")
    print()
    print(result.phase_diagram())
    print()
    print(f"simulations: {result.total_simulations} "
          f"(fixed grid at the same resolution: "
          f"{result.grid_equivalent_simulations})")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.to_json() + "\n")
        print(f"frontier document written to {args.out}")
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    """The live compiled-lane support matrix and its gate verdicts.

    Every cell names the fastest lane the pair would take *right now*
    in this process — fallback behavior measured, not guessed.
    """
    from repro.staticsched import _runloop_numba as rn
    from repro.staticsched.runloop import resolve_backend

    print("run-loop backends: " + ", ".join(available_backends())
          + " (select with --backend)")
    print("auto resolves to:  " + resolve_backend("auto"))
    print("numba installed:   " + ("yes" if rn.NUMBA_AVAILABLE else "no"))
    pairwise = rn._pairwise_self_check()
    print("pairwise-sum self-check: "
          + ("pass (hm admitted to the compiled lane)" if pairwise
             else "FAIL (hm pinned to the numpy lane)"))
    print()
    matrix = rn.lane_matrix()
    rows = [
        [sched] + [matrix[(sched, ev)] for ev in rn.COMPILED_EVALUATORS]
        for sched in rn.COMPILED_SCHEDULERS
    ]
    print(repro.format_table(
        ["scheduler"] + list(rn.COMPILED_EVALUATORS), rows
    ))
    print()
    print("batch-JIT wave driver (--executor batched, backend numba): "
          + ("active for compiled groups"
             if rn.NUMBA_AVAILABLE else "inactive (numpy wave engine)"))
    print("every pair also runs on the fused numpy lane and the "
          "scalar reference (--backend scalar); all lanes are "
          "bit-identical from one seed")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    rows = [
        [entry.id, entry.paper_ref, entry.claim, entry.bench_file]
        for entry in EXPERIMENTS
    ]
    print(repro.format_table(["id", "paper ref", "claim", "bench"], rows))
    return 0


_COMMANDS = {
    "info": cmd_info,
    "topology": cmd_topology,
    "scenarios": cmd_scenarios,
    "simulate": cmd_simulate,
    "sweep": cmd_sweep,
    "compare": cmd_compare,
    "fleet": cmd_fleet,
    "campaign": cmd_campaign,
    "backends": cmd_backends,
    "experiments": cmd_experiments,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        return 0


__all__ = ["main"]
