"""Metric spaces over finite node sets.

Two implementations are provided:

* :class:`EuclideanMetric` — nodes are :class:`~repro.geometry.point.Point`
  objects in the plane; distances are computed vectorised with numpy.
* :class:`FiniteMetric` — an explicit distance matrix, for experiments on
  non-geometric metrics (e.g. tree metrics, adversarial metrics). The
  constructor verifies symmetry, zero diagonal, and the triangle
  inequality.

Both expose the same interface: ``distance(i, j)`` between node indices
and a cached ``pairwise()`` matrix. The SINR machinery only ever talks to
this interface, so swapping the underlying space requires no other code
changes — this is what lets the "fading metric" experiments of
Corollary 14 run on the same code path as the planar ones.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.point import Point, points_to_array


class Metric(ABC):
    """A finite metric space over nodes ``0 .. n-1``."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of points in the space."""

    @abstractmethod
    def distance(self, i: int, j: int) -> float:
        """Distance between nodes ``i`` and ``j``."""

    @abstractmethod
    def pairwise(self) -> np.ndarray:
        """The full ``(n, n)`` distance matrix (cached by implementations)."""

    def ball(self, center: int, radius: float) -> List[int]:
        """Indices of all nodes within ``radius`` of ``center`` (inclusive)."""
        row = self.pairwise()[center]
        return [int(j) for j in np.nonzero(row <= radius)[0]]


class EuclideanMetric(Metric):
    """The Euclidean plane restricted to a finite list of points."""

    def __init__(self, points: Sequence[Point]):
        if len(points) == 0:
            raise ConfigurationError("EuclideanMetric requires at least one point")
        self._points = list(points)
        self._array = points_to_array(self._points)
        self._cached: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return len(self._points)

    @property
    def points(self) -> List[Point]:
        """The underlying points, in index order."""
        return list(self._points)

    def distance(self, i: int, j: int) -> float:
        return self._points[i].distance_to(self._points[j])

    def pairwise(self) -> np.ndarray:
        if self._cached is None:
            diff = self._array[:, None, :] - self._array[None, :, :]
            self._cached = np.sqrt((diff**2).sum(axis=2))
        return self._cached


class FiniteMetric(Metric):
    """An explicit finite metric given by its distance matrix."""

    def __init__(self, matrix: np.ndarray, validate: bool = True):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(
                f"distance matrix must be square, got shape {matrix.shape}"
            )
        if validate:
            self._validate(matrix)
        self._matrix = matrix

    @staticmethod
    def _validate(matrix: np.ndarray) -> None:
        n = matrix.shape[0]
        if not np.allclose(np.diag(matrix), 0.0):
            raise ConfigurationError("distance matrix must have a zero diagonal")
        if not np.allclose(matrix, matrix.T):
            raise ConfigurationError("distance matrix must be symmetric")
        if (matrix < 0).any():
            raise ConfigurationError("distances must be non-negative")
        # Triangle inequality: d(i,k) <= d(i,j) + d(j,k) for all i, j, k.
        # One vectorised pass: for each j, check matrix <= d(:,j) + d(j,:).
        for j in range(n):
            via_j = matrix[:, j][:, None] + matrix[j, :][None, :]
            if (matrix > via_j + 1e-9).any():
                raise ConfigurationError(
                    f"triangle inequality violated via intermediate node {j}"
                )

    @property
    def size(self) -> int:
        return self._matrix.shape[0]

    def distance(self, i: int, j: int) -> float:
        return float(self._matrix[i, j])

    def pairwise(self) -> np.ndarray:
        return self._matrix


def estimate_doubling_dimension(metric: Metric, sample_radii: int = 8) -> float:
    """Estimate the doubling dimension of a finite metric.

    The doubling dimension is ``log2`` of the doubling constant: the
    smallest ``M`` such that every ball of radius ``r`` is covered by ``M``
    balls of radius ``r/2``. For a finite metric we estimate it by, for a
    range of radii, greedily covering each radius-``r`` ball with
    half-radius balls and taking the worst case.

    This is an upper-bound estimate (greedy covering is within a constant
    of optimal) — adequate for deciding whether ``alpha`` exceeds the
    dimension, which is all the fading-metric results need.
    """
    pairwise = metric.pairwise()
    n = metric.size
    if n <= 1:
        return 0.0
    positive = pairwise[pairwise > 0]
    if positive.size == 0:
        return 0.0
    radii = np.geomspace(float(positive.min()), float(positive.max()), sample_radii)
    worst = 1
    for radius in radii:
        for center in range(n):
            members = np.nonzero(pairwise[center] <= radius)[0]
            worst = max(worst, _greedy_half_cover(pairwise, members, radius / 2.0))
    return math.log2(worst)


def _greedy_half_cover(pairwise: np.ndarray, members: np.ndarray, radius: float) -> int:
    """Number of radius-``radius`` balls a greedy cover of ``members`` uses."""
    remaining = set(int(i) for i in members)
    count = 0
    while remaining:
        center = next(iter(remaining))
        covered = {j for j in remaining if pairwise[center, j] <= radius}
        remaining -= covered
        count += 1
    return count


__all__ = [
    "Metric",
    "EuclideanMetric",
    "FiniteMetric",
    "estimate_doubling_dimension",
]
