"""Geometry substrate: points, metric spaces, and node placements.

The SINR model (paper Section 6) assumes network nodes live in a metric
space; path loss is ``p / d(s, r)^alpha``. This subpackage provides the
metric-space abstraction (Euclidean plane plus arbitrary finite metrics),
node-placement generators used by the topology builders, and a
doubling-dimension estimator used to decide whether a metric qualifies as
a "fading metric" (``alpha`` greater than the doubling dimension).
"""

from repro.geometry.point import Point, distance, midpoint
from repro.geometry.metric import (
    EuclideanMetric,
    FiniteMetric,
    Metric,
    estimate_doubling_dimension,
)
from repro.geometry.placement import (
    annulus_placement,
    cluster_placement,
    exponential_chain_placement,
    grid_placement,
    line_placement,
    uniform_placement,
)

__all__ = [
    "Point",
    "distance",
    "midpoint",
    "Metric",
    "EuclideanMetric",
    "FiniteMetric",
    "estimate_doubling_dimension",
    "uniform_placement",
    "grid_placement",
    "cluster_placement",
    "line_placement",
    "annulus_placement",
    "exponential_chain_placement",
]
