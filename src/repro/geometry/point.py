"""Immutable 2-D points.

Points are plain frozen dataclasses rather than numpy arrays so they can
be dictionary keys and compare by value; bulk distance computations
convert collections of points to arrays once (see
:meth:`repro.geometry.metric.EuclideanMetric.pairwise`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np


@dataclass(frozen=True, order=True)
class Point:
    """A point in the Euclidean plane."""

    x: float
    y: float

    def __iter__(self):
        yield self.x
        yield self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def scaled(self, factor: float) -> "Point":
        """Return a new point with both coordinates multiplied by ``factor``."""
        return Point(self.x * factor, self.y * factor)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def midpoint(a: Point, b: Point) -> Point:
    """The midpoint of segment ``ab``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def points_to_array(points: Iterable[Point]) -> np.ndarray:
    """Convert an iterable of points to an ``(n, 2)`` float array."""
    return np.asarray([(p.x, p.y) for p in points], dtype=float).reshape(-1, 2)


def array_to_points(array: np.ndarray) -> List[Point]:
    """Convert an ``(n, 2)`` array back to a list of :class:`Point`."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) array, got shape {arr.shape}")
    return [Point(float(x), float(y)) for x, y in arr]


__all__ = ["Point", "distance", "midpoint", "points_to_array", "array_to_points"]
