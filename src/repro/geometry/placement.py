"""Node-placement generators.

Each function returns a list of :class:`~repro.geometry.point.Point` and
takes a seedable ``rng`` so placements are reproducible. These feed the
topology builders in :mod:`repro.network.topology`; the distributions were
chosen to exercise the regimes the paper's corollaries distinguish:

* ``uniform_placement`` — the classic random ad-hoc deployment.
* ``cluster_placement`` — hotspots, stressing interference locality.
* ``grid_placement`` / ``line_placement`` — structured deployments with
  predictable path diversity (used for the latency-vs-path-length
  experiment E3).
* ``annulus_placement`` — near-equal link lengths, the friendly case for
  uniform power.
* ``exponential_chain_placement`` — link lengths spanning many orders of
  magnitude, maximising ``Delta`` (the long/short link ratio) that enters
  the oblivious-power competitive ratios of Section 6.2.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


def uniform_placement(
    count: int, side: float = 1.0, rng: RngLike = None
) -> List[Point]:
    """``count`` points uniform in the ``side x side`` square."""
    _check_count(count)
    check_positive("side", side)
    gen = ensure_rng(rng)
    coords = gen.random((count, 2)) * side
    return [Point(float(x), float(y)) for x, y in coords]


def grid_placement(rows: int, cols: int, spacing: float = 1.0) -> List[Point]:
    """A ``rows x cols`` grid with the given ``spacing`` (row-major order)."""
    _check_count(rows)
    _check_count(cols)
    check_positive("spacing", spacing)
    return [
        Point(c * spacing, r * spacing) for r in range(rows) for c in range(cols)
    ]


def line_placement(count: int, spacing: float = 1.0) -> List[Point]:
    """``count`` points on the x-axis, ``spacing`` apart."""
    _check_count(count)
    check_positive("spacing", spacing)
    return [Point(i * spacing, 0.0) for i in range(count)]


def cluster_placement(
    clusters: int,
    per_cluster: int,
    side: float = 1.0,
    cluster_radius: float = 0.05,
    rng: RngLike = None,
) -> List[Point]:
    """Gaussian clusters with uniformly placed centres.

    Returns ``clusters * per_cluster`` points. Coordinates are clipped to
    the square so the metric stays bounded.
    """
    _check_count(clusters)
    _check_count(per_cluster)
    check_positive("side", side)
    check_positive("cluster_radius", cluster_radius)
    gen = ensure_rng(rng)
    centres = gen.random((clusters, 2)) * side
    points: List[Point] = []
    for cx, cy in centres:
        offsets = gen.normal(scale=cluster_radius, size=(per_cluster, 2))
        for ox, oy in offsets:
            x = min(max(cx + ox, 0.0), side)
            y = min(max(cy + oy, 0.0), side)
            points.append(Point(float(x), float(y)))
    return points


def annulus_placement(
    count: int,
    inner_radius: float = 0.8,
    outer_radius: float = 1.0,
    rng: RngLike = None,
) -> List[Point]:
    """``count`` points uniform (in area) on an annulus around the origin."""
    _check_count(count)
    check_positive("inner_radius", inner_radius)
    if outer_radius <= inner_radius:
        raise ConfigurationError(
            f"outer_radius ({outer_radius}) must exceed inner_radius ({inner_radius})"
        )
    gen = ensure_rng(rng)
    # Inverse-CDF sampling of radius for uniform area density.
    u = gen.random(count)
    radii = np.sqrt(inner_radius**2 + u * (outer_radius**2 - inner_radius**2))
    angles = gen.random(count) * 2.0 * math.pi
    return [
        Point(float(r * math.cos(a)), float(r * math.sin(a)))
        for r, a in zip(radii, angles)
    ]


def exponential_chain_placement(count: int, base: float = 2.0) -> List[Point]:
    """Points at ``x = 0, 1, base, base^2, ...`` — exponentially growing gaps.

    Consecutive-point links have lengths spanning ``base**(count-2)``
    orders, which maximises the length diversity ``Delta`` appearing in
    the oblivious-power bounds.
    """
    _check_count(count)
    if base <= 1.0:
        raise ConfigurationError(f"base must exceed 1, got {base}")
    xs = [0.0]
    for i in range(count - 1):
        xs.append(xs[-1] + base**i)
    return [Point(x, 0.0) for x in xs]


def _check_count(count: int) -> None:
    if count < 1:
        raise ConfigurationError(f"count must be at least 1, got {count}")


__all__ = [
    "uniform_placement",
    "grid_placement",
    "line_placement",
    "cluster_placement",
    "annulus_placement",
    "exponential_chain_placement",
]
