"""Injection-rate arithmetic.

Small helpers shared by experiments: compute the rate
``lambda = ||W . F||_inf`` of a mean-usage vector, and rescale a usage
pattern to hit a target rate exactly. Kept separate from the processes
so analysis code can reason about rates without instantiating one.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.interference.base import InterferenceModel


def injection_rate_of_distribution(
    model: InterferenceModel, mean_usage: np.ndarray
) -> float:
    """``||W . F||_inf`` — the injection rate of a mean-usage vector."""
    return model.injection_norm(np.asarray(mean_usage, dtype=float))


def scale_to_rate(
    model: InterferenceModel, mean_usage: np.ndarray, target_rate: float
) -> Tuple[np.ndarray, float]:
    """Scale ``mean_usage`` so its rate equals ``target_rate``.

    Returns ``(scaled_usage, factor)``. The base usage must have a
    strictly positive rate.
    """
    if target_rate < 0:
        raise ConfigurationError(f"target_rate must be >= 0, got {target_rate}")
    usage = np.asarray(mean_usage, dtype=float)
    base = injection_rate_of_distribution(model, usage)
    if base <= 0:
        raise ConfigurationError("cannot scale a zero-rate usage vector")
    factor = target_rate / base
    return usage * factor, factor


def paths_mean_usage(num_links: int, paths: Sequence[Sequence[int]]) -> np.ndarray:
    """Mean-usage vector of one uniformly random path per slot."""
    usage = np.zeros(num_links, dtype=float)
    if not paths:
        return usage
    probability = 1.0 / len(paths)
    for path in paths:
        for link_id in path:
            usage[link_id] += probability
    return usage


__all__ = ["injection_rate_of_distribution", "scale_to_rate", "paths_mean_usage"]
