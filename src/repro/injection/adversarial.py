"""(w, lambda)-bounded window adversaries (Section 2.1).

An adversary is bounded when, for *every* interval of ``w`` consecutive
slots, the interference measure ``||W . R||_inf`` of all packets
injected inside the interval is at most ``w * lambda``.

The built-in adversaries plan one window at a time against a measure
budget and differ in *when inside the window* they release the packets:

* :class:`SmoothAdversary` — spreads packets evenly over the window
  (the friendly case; close to the stochastic model).
* :class:`BurstyAdversary` — releases the whole budget in the first
  slot of each window. The worst case the Section-5 random shift is
  designed for.
* :class:`SawtoothAdversary` — alternates heavy and idle half-windows.
* :class:`TargetedAdversary` — spends the entire budget on the paths
  crossing the single most-loaded link, creating a hotspot.

All planning is greedy: candidate paths are added while the window's
cumulative measure stays within budget, so boundedness holds by
construction *per aligned window*; since every built-in releases
nothing in the last-slot overhang pattern that could double a sliding
window, the sliding-window condition holds too — and is verified
empirically by :class:`WindowAudit` in the test suite rather than
trusted.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, InjectionError
from repro.injection.base import InjectionProcess
from repro.injection.packet import Packet
from repro.injection.store import PacketStore
from repro.interference.base import InterferenceModel
from repro.utils.rng import RngLike, ensure_rng

Path = Tuple[int, ...]


class WindowAdversary(InjectionProcess):
    """Base class: plans packets window by window under a measure budget.

    Subclasses implement :meth:`_plan_window`, returning a mapping from
    slot offset (``0 .. w-1``) to the list of paths injected at that
    offset. The base class enforces the budget on every plan before
    caching it.
    """

    def __init__(
        self,
        model: InterferenceModel,
        paths: Sequence[Path],
        window: int,
        rate: float,
        rng: RngLike = None,
        store: Optional[PacketStore] = None,
    ):
        super().__init__(store=store)
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if rate < 0:
            raise ConfigurationError(f"rate must be >= 0, got {rate}")
        if not paths:
            raise ConfigurationError("adversary needs a non-empty path pool")
        self._model = model
        self._paths = [tuple(int(e) for e in p) for p in paths]
        self._window = int(window)
        self._rate = float(rate)
        self._rng = ensure_rng(rng)
        self._plans: Dict[int, Dict[int, List[Path]]] = {}

    @property
    def window(self) -> int:
        return self._window

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def budget(self) -> float:
        """The per-window measure budget ``w * lambda``."""
        return self._window * self._rate

    def indices_for_slot(self, slot: int) -> List[int]:
        index, offset = divmod(slot, self._window)
        if index not in self._plans:
            plan = self._plan_window(index)
            self._verify_budget(plan, index)
            self._plans[index] = plan
            # Windows far in the past can be dropped to bound memory.
            stale = [k for k in self._plans if k < index - 2]
            for k in stale:
                del self._plans[k]
        return [
            self._allocate(path, slot)
            for path in self._plans[index].get(offset, [])
        ]

    def _plan_window(self, index: int) -> Dict[int, List[Path]]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    @staticmethod
    def _plan_to_state(plan: Dict[int, List[Path]]) -> Dict[str, list]:
        return {
            str(offset): [list(path) for path in paths]
            for offset, paths in plan.items()
        }

    @staticmethod
    def _plan_from_state(state: Dict[str, list]) -> Dict[int, List[Path]]:
        return {
            int(offset): [tuple(int(e) for e in path) for path in paths]
            for offset, paths in state.items()
        }

    def state_dict(self) -> dict:
        """Mutable state: the packing RNG plus every cached window plan.

        Plans must be serialized, not recomputed — planning consumes the
        RNG, so a resumed adversary that re-planned a window would
        diverge from the uninterrupted run.
        """
        state = {
            "rng": self._rng.bit_generator.state,
            "plans": {
                str(index): self._plan_to_state(plan)
                for index, plan in self._plans.items()
            },
        }
        if hasattr(self, "_periodic_plan"):
            periodic = self._periodic_plan
            state["periodic_plan"] = (
                None if periodic is None else self._plan_to_state(periodic)
            )
        return state

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.rng import restore_generator_state

        try:
            plans = {
                int(index): self._plan_from_state(plan)
                for index, plan in state["plans"].items()
            }
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ConfigurationError(
                f"invalid adversary plan state: {exc}"
            ) from exc
        restore_generator_state(self._rng, state["rng"])
        self._plans = plans
        if hasattr(self, "_periodic_plan"):
            periodic = state.get("periodic_plan")
            self._periodic_plan = (
                None if periodic is None else self._plan_from_state(periodic)
            )

    def _verify_budget(self, plan: Dict[int, List[Path]], index: int) -> None:
        all_links: List[int] = []
        for paths in plan.values():
            for path in paths:
                all_links.extend(path)
        measure = self._model.interference_measure(all_links)
        if measure > self.budget + 1e-6:
            raise InjectionError(
                f"window {index} plan has measure {measure:.3f} exceeding the "
                f"budget {self.budget:.3f} — adversary bug"
            )

    # ------------------------------------------------------------------
    # Greedy packing helper shared by the subclasses
    # ------------------------------------------------------------------

    def _pack(self, pool: Sequence[Path], budget: float) -> List[Path]:
        """Greedily pick paths from ``pool`` while measure <= ``budget``.

        Paths are tried in random order with repetition until no path
        fits any more (or a safety cap is hit). The running products
        vector ``W . R`` is updated incrementally — adding a path only
        touches the columns of its links — so packing a large budget is
        O(paths * m) instead of O(paths * m^2).
        """
        chosen: List[Path] = []
        weights = self._model.weight_matrix()
        products = np.zeros(self._model.num_links, dtype=float)
        cap = max(64, int(4 * budget) * max(1, self._model.num_links))
        attempts = 0
        while attempts < cap:
            attempts += 1
            path = pool[int(self._rng.integers(len(pool)))]
            delta = np.zeros_like(products)
            for link_id in path:
                delta += weights[:, link_id]
            trial = products + delta
            if float(trial.max()) <= budget + 1e-9:
                products = trial
                chosen.append(path)
            else:
                # A single miss does not mean saturation (other paths may
                # fit); stop only after a run of consecutive misses.
                if attempts > 16 and not chosen:
                    break
                if len(chosen) > 0 and attempts > 8 * (len(chosen) + 4):
                    break
        return chosen


class SmoothAdversary(WindowAdversary):
    """Budget spread evenly across the window's slots.

    The plan is drawn once and repeated every window (period exactly
    ``w``), so every *sliding* window sees a rotation of the same
    multiset — the bound holds for arbitrary intervals, not just
    aligned ones.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._periodic_plan: Optional[Dict[int, List[Path]]] = None

    def _plan_window(self, index: int) -> Dict[int, List[Path]]:
        if self._periodic_plan is None:
            chosen = self._pack(self._paths, self.budget)
            plan: Dict[int, List[Path]] = {}
            for k, path in enumerate(chosen):
                plan.setdefault(k % self._window, []).append(path)
            self._periodic_plan = plan
        return self._periodic_plan


class BurstyAdversary(WindowAdversary):
    """The whole window budget released in the window's first slot."""

    def _plan_window(self, index: int) -> Dict[int, List[Path]]:
        return {0: self._pack(self._paths, self.budget)}


class SawtoothAdversary(WindowAdversary):
    """Heavy first half-window, idle second half.

    Periodic like :class:`SmoothAdversary` (one plan, repeated), which
    is what keeps *sliding* windows spanning two heavy half-windows
    within budget.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._periodic_plan: Optional[Dict[int, List[Path]]] = None

    def _plan_window(self, index: int) -> Dict[int, List[Path]]:
        if self._periodic_plan is None:
            chosen = self._pack(self._paths, self.budget)
            half = max(1, self._window // 2)
            plan: Dict[int, List[Path]] = {}
            for k, path in enumerate(chosen):
                plan.setdefault(k % half, []).append(path)
            self._periodic_plan = plan
        return self._periodic_plan


class TargetedAdversary(WindowAdversary):
    """Budget concentrated on paths crossing one victim link.

    The victim is the link whose ``W`` row sums largest over the pool's
    usage — the most interference-sensitive hotspot. Falls back to the
    full pool when no pool path crosses the victim.
    """

    def __init__(
        self,
        model: InterferenceModel,
        paths: Sequence[Path],
        window: int,
        rate: float,
        rng: RngLike = None,
        victim: Optional[int] = None,
        store: Optional[PacketStore] = None,
    ):
        super().__init__(model, paths, window, rate, rng, store=store)
        if victim is None:
            usage = np.zeros(model.num_links)
            for path in self._paths:
                for link_id in path:
                    usage[link_id] += 1.0
            row_load = model.weight_matrix() @ usage
            victim = int(row_load.argmax())
        self._victim = victim
        self._victim_paths = [p for p in self._paths if self._victim in p]

    @property
    def victim(self) -> int:
        """The targeted link id."""
        return self._victim

    def _plan_window(self, index: int) -> Dict[int, List[Path]]:
        pool = self._victim_paths or self._paths
        return {0: self._pack(pool, self.budget)}


class WindowAudit:
    """Sliding-window verifier for the ``(w, lambda)`` bound.

    Feed it every slot's injected packets; it maintains the last ``w``
    slots and raises :class:`InjectionError` the moment any window
    exceeds ``w * lambda`` (plus tolerance). Used to certify adversaries.
    """

    def __init__(
        self,
        model: InterferenceModel,
        window: int,
        rate: float,
        tolerance: float = 1e-6,
    ):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self._model = model
        self._window = int(window)
        self._budget = window * rate
        self._tolerance = tolerance
        self._recent: deque = deque()
        # Running request vector of the current window, updated
        # incrementally: recomputing the window from scratch is
        # O(window) per slot and dominates long audited runs.
        self._vector = np.zeros(model.num_links, dtype=float)
        self._measure = 0.0
        self._worst = 0.0

    @property
    def worst_window_measure(self) -> float:
        """Largest sliding-window measure observed so far."""
        return self._worst

    def observe(self, slot: int, packets: Sequence[Packet]) -> None:
        """Record a slot's injections and check the current window."""
        links = [link for p in packets for link in p.path]
        self._recent.append(links)
        for link in links:
            self._vector[link] += 1.0
        evicted: Sequence[int] = ()
        if len(self._recent) > self._window:
            evicted = self._recent.popleft()
            for link in evicted:
                self._vector[link] -= 1.0
        if links or evicted:
            self._measure = self._model.interference_measure(self._vector)
        measure = self._measure
        self._worst = max(self._worst, measure)
        if measure > self._budget + self._tolerance:
            raise InjectionError(
                f"window ending at slot {slot} has measure {measure:.4f} > "
                f"budget {self._budget:.4f}: adversary is not "
                f"({self._window}, {self._budget / self._window:.4f})-bounded"
            )


__all__ = [
    "WindowAdversary",
    "SmoothAdversary",
    "BurstyAdversary",
    "SawtoothAdversary",
    "TargetedAdversary",
    "WindowAudit",
]
