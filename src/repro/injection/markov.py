"""Bursty-but-stationary injection processes beyond the paper's models.

The paper's stochastic model (Section 2.1) requires slot-independence
(property (b)) and one packet per generator per slot (property (c)).
Real traffic is burstier. These processes relax exactly one property
each, giving controlled stress tests that sit *between* the stochastic
model and the window adversary:

* :class:`MarkovModulatedInjection` keeps property (c) but drops (b):
  each generator carries an ON/OFF two-state Markov chain; it injects
  only while ON. The process is stationary (started from the chain's
  stationary distribution), so a long-run injection rate
  ``lambda = ||W . F||_inf`` is still exact and the protocol's
  provisioning story applies — but arrivals cluster into ON bursts
  whose mean length is ``1 / p_off``.
* :class:`PoissonBatchInjection` keeps (b) but drops (c): a single
  infinite-user population injects a Poisson-distributed *batch* each
  slot. This is the classical multiple-access arrival model (ALOHA
  lineage) and the natural "infinitely many users" limit the related
  work studies.

Both expose the same ``mean_usage`` / ``injection_rate`` interface as
:class:`~repro.injection.stochastic.StochasticInjection`, so frame
provisioning and the stability experiments treat them uniformly.
:func:`empirical_usage` closes the loop by measuring the realised mean
usage of *any* process over a horizon.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, InjectionError
from repro.injection.base import InjectionProcess
from repro.injection.stochastic import PathDist, PathGenerator
from repro.injection.store import PacketStore
from repro.interference.base import InterferenceModel
from repro.utils.rng import RngLike, spawn_rngs


class MarkovModulatedInjection(InjectionProcess):
    """Finite generators gated by independent ON/OFF Markov chains.

    Each generator behaves like a Section-2.1 :class:`PathGenerator`
    while its chain is ON and stays silent while OFF. Chains evolve
    once per slot with switching probabilities ``p_on_off`` (leave ON)
    and ``p_off_on`` (leave OFF); the stationary ON-probability is
    ``pi_on = p_off_on / (p_on_off + p_off_on)``.

    Starting every chain from its stationary distribution makes the
    process time-stationary, so the long-run mean usage vector is
    exactly ``pi_on`` times the always-on usage — property (a) of the
    paper's model holds, property (b) (independence across slots) is
    deliberately violated. Mean burst length is ``1 / p_on_off`` slots.

    Parameters
    ----------
    generators:
        The per-generator path distributions (conditioned on ON).
    p_on_off, p_off_on:
        Per-slot switching probabilities, both in ``(0, 1]``.
    rng:
        Seed or generator; split into one stream per generator plus one
        for the chain states.
    """

    def __init__(
        self,
        generators: Sequence[PathGenerator],
        p_on_off: float,
        p_off_on: float,
        rng: RngLike = None,
        store: Optional[PacketStore] = None,
    ):
        super().__init__(store=store)
        if not generators:
            raise InjectionError("at least one generator is required")
        if not 0.0 < p_on_off <= 1.0:
            raise ConfigurationError(
                f"p_on_off must be in (0, 1], got {p_on_off}"
            )
        if not 0.0 < p_off_on <= 1.0:
            raise ConfigurationError(
                f"p_off_on must be in (0, 1], got {p_off_on}"
            )
        self._generators = list(generators)
        self._p_on_off = float(p_on_off)
        self._p_off_on = float(p_off_on)
        streams = spawn_rngs(rng, len(self._generators) + 1)
        self._rngs = streams[: len(self._generators)]
        state_rng = streams[-1]
        pi_on = self.stationary_on_probability
        self._states = [
            bool(state_rng.random() < pi_on) for _ in self._generators
        ]
        self._next_slot = 0

    @property
    def stationary_on_probability(self) -> float:
        """``pi_on = p_off_on / (p_on_off + p_off_on)``."""
        return self._p_off_on / (self._p_on_off + self._p_off_on)

    @property
    def mean_burst_length(self) -> float:
        """Expected number of consecutive ON slots (``1 / p_on_off``)."""
        return 1.0 / self._p_on_off

    @property
    def generators(self) -> List[PathGenerator]:
        return list(self._generators)

    def state_dict(self) -> dict:
        """Mutable state: per-generator RNGs, chain states, slot cursor."""
        return {
            "rngs": [rng.bit_generator.state for rng in self._rngs],
            "states": [bool(s) for s in self._states],
            "next_slot": self._next_slot,
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.rng import restore_generator_state

        states = state.get("rngs")
        chain = state.get("states")
        if not isinstance(states, list) or len(states) != len(self._rngs):
            raise ConfigurationError(
                "Markov injection state does not match the generator count"
            )
        if not isinstance(chain, list) or len(chain) != len(self._states):
            raise ConfigurationError(
                "Markov injection state has a mismatched chain-state vector"
            )
        for rng, rng_state in zip(self._rngs, states):
            restore_generator_state(rng, rng_state)
        self._states = [bool(s) for s in chain]
        self._next_slot = int(state["next_slot"])

    def mean_usage(self, num_links: int) -> np.ndarray:
        """Stationary mean per-slot usage: ``pi_on`` times the ON usage."""
        usage = np.zeros(num_links, dtype=float)
        for generator in self._generators:
            usage += generator.mean_usage(num_links)
        return self.stationary_on_probability * usage

    def injection_rate(self, model: InterferenceModel) -> float:
        """Long-run ``lambda = ||W . F||_inf`` under ``model``."""
        return model.injection_norm(self.mean_usage(model.num_links))

    def indices_for_slot(self, slot: int) -> List[int]:
        if slot != self._next_slot:
            raise InjectionError(
                f"Markov-modulated injection must be queried in slot order; "
                f"expected slot {self._next_slot}, got {slot}"
            )
        self._next_slot += 1
        indices: List[int] = []
        for index, (generator, rng) in enumerate(
            zip(self._generators, self._rngs)
        ):
            if self._states[index]:
                draw = rng.random()
                cumulative = 0.0
                for path, probability in generator.distribution:
                    cumulative += probability
                    if draw < cumulative:
                        indices.append(self._allocate(path, slot))
                        break
                if rng.random() < self._p_on_off:
                    self._states[index] = False
            else:
                if rng.random() < self._p_off_on:
                    self._states[index] = True
        return indices


class PoissonBatchInjection(InjectionProcess):
    """Poisson batch arrivals from an infinite-user population.

    In each slot an independent ``Poisson(batch_mean)`` number of
    packets arrives; each packet independently draws its path from
    ``path_distribution`` (probabilities summing to 1). Slots are
    independent and identically distributed — properties (a) and (b)
    of the paper's model hold, but a single slot can carry arbitrarily
    many packets, so the finite-generator property (c) is dropped.

    The mean usage vector is ``batch_mean`` times the per-packet
    expected usage, so ``injection_rate`` remains exact.
    """

    def __init__(
        self,
        path_distribution: PathDist,
        batch_mean: float,
        rng: RngLike = None,
        store: Optional[PacketStore] = None,
    ):
        super().__init__(store=store)
        if batch_mean < 0:
            raise ConfigurationError(
                f"batch_mean must be non-negative, got {batch_mean}"
            )
        total = 0.0
        cleaned: List[Tuple[Tuple[int, ...], float]] = []
        for path, probability in path_distribution:
            if probability < 0:
                raise InjectionError(
                    f"negative path probability {probability}"
                )
            if len(path) == 0:
                raise InjectionError("path distribution contains an empty path")
            total += probability
            cleaned.append((tuple(int(e) for e in path), float(probability)))
        if cleaned and abs(total - 1.0) > 1e-9:
            raise InjectionError(
                f"path probabilities must sum to 1, got {total}"
            )
        self._paths = cleaned
        self._cumulative = np.cumsum([p for _, p in cleaned]) if cleaned else None
        self._batch_mean = float(batch_mean)
        (self._rng,) = spawn_rngs(rng, 1)

    @property
    def batch_mean(self) -> float:
        return self._batch_mean

    def state_dict(self) -> dict:
        """Mutable state: the single arrival RNG."""
        return {"rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.rng import restore_generator_state

        restore_generator_state(self._rng, state["rng"])

    def mean_usage(self, num_links: int) -> np.ndarray:
        """``batch_mean`` times the per-packet expected link usage."""
        usage = np.zeros(num_links, dtype=float)
        for path, probability in self._paths:
            for link_id in path:
                usage[link_id] += probability
        return self._batch_mean * usage

    def injection_rate(self, model: InterferenceModel) -> float:
        """Exact ``lambda = ||W . F||_inf`` under ``model``."""
        return model.injection_norm(self.mean_usage(model.num_links))

    def indices_for_slot(self, slot: int) -> List[int]:
        if not self._paths or self._batch_mean == 0.0:
            return []
        count = int(self._rng.poisson(self._batch_mean))
        indices: List[int] = []
        for _ in range(count):
            draw = self._rng.random()
            index = int(np.searchsorted(self._cumulative, draw, side="right"))
            index = min(index, len(self._paths) - 1)
            indices.append(self._allocate(self._paths[index][0], slot))
        return indices


def empirical_usage(
    process: InjectionProcess, num_links: int, horizon: int
) -> np.ndarray:
    """Measured mean per-slot usage of ``process`` over ``horizon`` slots.

    Consumes the process (stateful processes advance); use a freshly
    seeded instance when comparing against :meth:`mean_usage`.
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    usage = np.zeros(num_links, dtype=float)
    for slot in range(horizon):
        for packet in process.packets_for_slot(slot):
            for link_id in packet.path:
                usage[link_id] += 1.0
    return usage / horizon


__all__ = [
    "MarkovModulatedInjection",
    "PoissonBatchInjection",
    "empirical_usage",
]
