"""Stochastic injection by finite, independent generators (Section 2.1).

Each :class:`PathGenerator` holds a distribution over paths with total
probability at most 1; in every slot it independently injects at most
one packet according to that distribution (property (c): one packet per
generator per slot; properties (a)/(b): time-invariance and
independence come from drawing fresh uniform randomness each slot from
the generator's own RNG stream).

:class:`StochasticInjection` aggregates generators, computes the exact
mean path-usage vector ``F`` (``F(e) = sum_g sum_{P : e in P} E[X_{g,P}]``,
multiplicity counted), and therefore the exact injection rate
``lambda = ||W . F||_inf`` against any interference model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, InjectionError
from repro.injection.base import InjectionProcess
from repro.injection.store import PacketStore
from repro.interference.base import InterferenceModel
from repro.network.routing import RoutingTable
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs

PathDist = Sequence[Tuple[Tuple[int, ...], float]]


@dataclass
class PathGenerator:
    """One packet generator: a distribution over paths.

    ``distribution`` is a list of ``(path, probability)`` pairs; the
    probabilities must sum to at most 1 (the remainder is the
    probability of injecting nothing in a slot).
    """

    distribution: PathDist

    def __post_init__(self):
        total = 0.0
        cleaned = []
        for path, probability in self.distribution:
            if probability < 0:
                raise InjectionError(
                    f"negative path probability {probability} in generator"
                )
            if len(path) == 0:
                raise InjectionError("generator contains an empty path")
            total += probability
            cleaned.append((tuple(int(e) for e in path), float(probability)))
        self._check_total(total)
        self.distribution = cleaned

    @staticmethod
    def _check_total(total: float) -> None:
        if total > 1.0 + 1e-9:
            raise InjectionError(
                f"generator path probabilities sum to {total} > 1; a generator "
                "injects at most one packet per slot"
            )

    @classmethod
    def _from_cleaned(cls, distribution) -> "PathGenerator":
        """Construct from an already-cleaned distribution, skipping the
        per-path re-validation of ``__post_init__`` (which dominated
        injection setup on all-pairs pools)."""
        generator = object.__new__(cls)
        generator.distribution = distribution
        return generator

    @property
    def total_probability(self) -> float:
        """Probability of injecting any packet in a slot."""
        return sum(p for _, p in self.distribution)

    def scaled(self, factor: float) -> "PathGenerator":
        """A copy with all probabilities multiplied by ``factor``."""
        if factor < 0:
            raise InjectionError(f"scale factor must be non-negative, got {factor}")
        self._check_total(self.total_probability * factor)
        return PathGenerator._from_cleaned(
            [
                (path, probability * factor)
                for path, probability in self.distribution
            ]
        )

    def mean_usage(self, num_links: int) -> np.ndarray:
        """This generator's contribution to ``F`` (per-slot expectation)."""
        usage = np.zeros(num_links, dtype=float)
        for path, probability in self.distribution:
            for link_id in path:
                usage[link_id] += probability
        return usage


class StochasticInjection(InjectionProcess):
    """Aggregate of independent :class:`PathGenerator` s."""

    def __init__(
        self,
        generators: Sequence[PathGenerator],
        rng: RngLike = None,
        store: Optional[PacketStore] = None,
    ):
        super().__init__(store=store)
        if not generators:
            raise InjectionError("at least one generator is required")
        self._generators = list(generators)
        self._rngs = spawn_rngs(rng, len(self._generators))
        # Per-generator batch-sampling state, built once (rebuilding it
        # per frame costs O(paths) and dominated all-pairs pools):
        # multinomial pvals (path probabilities + idle remainder) and a
        # CSR view of the path pool, so a frame's packets flatten into
        # one PacketStore.allocate_flat call.
        self._pvals = []
        self._pool_links = []
        self._pool_offsets = []
        self._pool_lengths = []
        for generator in self._generators:
            probabilities = [p for _, p in generator.distribution]
            idle = max(0.0, 1.0 - sum(probabilities))
            self._pvals.append(probabilities + [idle])
            lengths = np.asarray(
                [len(path) for path, _ in generator.distribution],
                dtype=np.int64,
            )
            offsets = np.zeros(lengths.size + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            flat = (
                np.concatenate(
                    [
                        np.asarray(path, dtype=np.int64)
                        for path, _ in generator.distribution
                    ]
                )
                if lengths.size
                else np.empty(0, dtype=np.int64)
            )
            self._pool_links.append(flat)
            self._pool_offsets.append(offsets)
            self._pool_lengths.append(lengths)

    @property
    def generators(self) -> List[PathGenerator]:
        return list(self._generators)

    def state_dict(self) -> dict:
        """Mutable state: one RNG stream per generator."""
        return {"rngs": [rng.bit_generator.state for rng in self._rngs]}

    def load_state_dict(self, state: dict) -> None:
        from repro.errors import ConfigurationError
        from repro.utils.rng import restore_generator_state

        states = state.get("rngs")
        if not isinstance(states, list) or len(states) != len(self._rngs):
            raise ConfigurationError(
                f"injection state has {0 if not isinstance(states, list) else len(states)} "
                f"RNG streams but this process has {len(self._rngs)} generators"
            )
        for rng, rng_state in zip(self._rngs, states):
            restore_generator_state(rng, rng_state)

    def mean_usage(self, num_links: int) -> np.ndarray:
        """The exact mean per-slot path-usage vector ``F``."""
        usage = np.zeros(num_links, dtype=float)
        for generator in self._generators:
            usage += generator.mean_usage(num_links)
        return usage

    def injection_rate(self, model: InterferenceModel) -> float:
        """The exact rate ``lambda = ||W . F||_inf`` under ``model``."""
        return model.injection_norm(self.mean_usage(model.num_links))

    def indices_for_slot(self, slot: int) -> List[int]:
        indices: List[int] = []
        for generator, rng in zip(self._generators, self._rngs):
            draw = rng.random()
            cumulative = 0.0
            for path, probability in generator.distribution:
                cumulative += probability
                if draw < cumulative:
                    indices.append(self._allocate(path, slot))
                    break
        return indices

    def indices_for_range(self, start_slot: int, end_slot: int) -> np.ndarray:
        """Batch sampling: one multinomial per generator per range.

        Over ``L`` slots a generator injects a multinomially distributed
        number of packets per path (``L`` trials over the path
        probabilities plus the idle remainder) — identical in
        distribution to ``L`` independent per-slot draws. Injection
        slots are stamped uniformly inside the range; the dynamic
        protocol only consumes whole-frame batches, so the stamps only
        affect latency bookkeeping, for which uniform placement is the
        faithful marginal.
        """
        length = end_slot - start_slot
        if length <= 0:
            return np.empty(0, dtype=np.int64)
        store = self._store
        path_id_runs: List[np.ndarray] = []
        count_runs: List[np.ndarray] = []
        slot_runs: List[np.ndarray] = []
        pool_rows: List[int] = []
        for row, (pvals, rng) in enumerate(zip(self._pvals, self._rngs)):
            counts = rng.multinomial(length, pvals)
            # Only the drawn paths are visited (the idle count is the
            # trailing entry and never allocates); the RNG stream is
            # untouched by the skip — zero-count paths drew nothing.
            drawn = np.flatnonzero(counts[:-1])
            if not drawn.size:
                continue
            drawn_counts = counts[drawn]
            # One batched stamp draw per generator: slots are iid
            # uniform regardless of path, so drawing the whole batch
            # at once is the same distribution as per-path draws.
            slot_runs.append(
                rng.integers(length, size=int(drawn_counts.sum()))
            )
            path_id_runs.append(drawn)
            count_runs.append(drawn_counts)
            pool_rows.append(row)
        if not slot_runs:
            return np.empty(0, dtype=np.int64)
        # Flatten the whole frame into one CSR allocation: per-packet
        # path ids repeat each drawn path `count` times, and the link
        # gather is one repeat-indexing pass over the pool CSR.
        flat_runs: List[np.ndarray] = []
        length_runs: List[np.ndarray] = []
        for row, drawn, drawn_counts in zip(
            pool_rows, path_id_runs, count_runs
        ):
            path_ids = np.repeat(drawn, drawn_counts)
            lengths = self._pool_lengths[row][path_ids]
            starts = self._pool_offsets[row][path_ids]
            total = int(lengths.sum())
            ends = np.cumsum(lengths)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                ends - lengths, lengths
            )
            flat_runs.append(
                self._pool_links[row][np.repeat(starts, lengths) + within]
            )
            length_runs.append(lengths)
        stamps = start_slot + np.concatenate(slot_runs)
        indices = store.allocate_flat(
            np.concatenate(flat_runs), np.concatenate(length_runs), stamps
        )
        # Stable (injected_at, id) order, matching the per-slot stream.
        order = np.lexsort((indices, stamps))
        return indices[order]


def uniform_pair_injection(
    routing: RoutingTable,
    model: InterferenceModel,
    target_rate: float,
    num_generators: int = 1,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    rng: RngLike = None,
    store: Optional[PacketStore] = None,
) -> StochasticInjection:
    """Injection uniform over routed pairs, scaled to an exact target rate.

    Builds ``num_generators`` identical generators, each uniform over
    the given source/destination ``pairs`` (default: every routed pair),
    then scales the per-path probabilities so that the aggregate
    injection rate under ``model`` is exactly ``target_rate``.

    Raises if the target rate would force some generator above one
    packet per slot (property (c)) — use more generators in that case.
    """
    if target_rate < 0:
        raise ConfigurationError(f"target_rate must be >= 0, got {target_rate}")
    if num_generators < 1:
        raise ConfigurationError(
            f"num_generators must be >= 1, got {num_generators}"
        )
    if pairs is None:
        pairs = routing.pairs()
    if not pairs:
        raise ConfigurationError("no routed pairs available for injection")
    paths = []
    for source, destination in pairs:
        path = routing.path(source, destination)
        if len(path) == 0:
            raise ConfigurationError(
                f"routing returned an empty path for pair "
                f"({source}, {destination}); injection paths need at "
                "least one link"
            )
        paths.append(path)
    base_probability = 1.0 / len(paths)
    base = PathGenerator([(path, base_probability) for path in paths])
    # All generators are identical, so the aggregate usage is one
    # scalar multiply (the old form summed num_generators copies of the
    # same array).
    base_rate = model.injection_norm(
        num_generators * base.mean_usage(model.num_links)
    )
    if base_rate <= 0:
        raise ConfigurationError("base injection rate is zero; cannot scale")
    factor = target_rate / base_rate
    if base.total_probability * factor > 1.0 + 1e-9:
        raise ConfigurationError(
            f"target rate {target_rate} needs per-generator injection "
            f"probability {base.total_probability * factor:.3f} > 1; "
            "increase num_generators"
        )
    generators = [base.scaled(factor) for _ in range(num_generators)]
    return StochasticInjection(generators, rng=rng, store=store)


__all__ = ["PathGenerator", "StochasticInjection", "uniform_pair_injection"]
