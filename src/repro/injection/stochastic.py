"""Stochastic injection by finite, independent generators (Section 2.1).

Each :class:`PathGenerator` holds a distribution over paths with total
probability at most 1; in every slot it independently injects at most
one packet according to that distribution (property (c): one packet per
generator per slot; properties (a)/(b): time-invariance and
independence come from drawing fresh uniform randomness each slot from
the generator's own RNG stream).

:class:`StochasticInjection` aggregates generators, computes the exact
mean path-usage vector ``F`` (``F(e) = sum_g sum_{P : e in P} E[X_{g,P}]``,
multiplicity counted), and therefore the exact injection rate
``lambda = ||W . F||_inf`` against any interference model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, InjectionError
from repro.injection.base import InjectionProcess
from repro.injection.packet import Packet
from repro.interference.base import InterferenceModel
from repro.network.routing import RoutingTable
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs

PathDist = Sequence[Tuple[Tuple[int, ...], float]]


@dataclass
class PathGenerator:
    """One packet generator: a distribution over paths.

    ``distribution`` is a list of ``(path, probability)`` pairs; the
    probabilities must sum to at most 1 (the remainder is the
    probability of injecting nothing in a slot).
    """

    distribution: PathDist

    def __post_init__(self):
        total = 0.0
        cleaned = []
        for path, probability in self.distribution:
            if probability < 0:
                raise InjectionError(
                    f"negative path probability {probability} in generator"
                )
            if len(path) == 0:
                raise InjectionError("generator contains an empty path")
            total += probability
            cleaned.append((tuple(int(e) for e in path), float(probability)))
        if total > 1.0 + 1e-9:
            raise InjectionError(
                f"generator path probabilities sum to {total} > 1; a generator "
                "injects at most one packet per slot"
            )
        self.distribution = cleaned

    @property
    def total_probability(self) -> float:
        """Probability of injecting any packet in a slot."""
        return sum(p for _, p in self.distribution)

    def scaled(self, factor: float) -> "PathGenerator":
        """A copy with all probabilities multiplied by ``factor``."""
        if factor < 0:
            raise InjectionError(f"scale factor must be non-negative, got {factor}")
        return PathGenerator(
            [(path, probability * factor) for path, probability in self.distribution]
        )

    def mean_usage(self, num_links: int) -> np.ndarray:
        """This generator's contribution to ``F`` (per-slot expectation)."""
        usage = np.zeros(num_links, dtype=float)
        for path, probability in self.distribution:
            for link_id in path:
                usage[link_id] += probability
        return usage


class StochasticInjection(InjectionProcess):
    """Aggregate of independent :class:`PathGenerator` s."""

    def __init__(self, generators: Sequence[PathGenerator], rng: RngLike = None):
        super().__init__()
        if not generators:
            raise InjectionError("at least one generator is required")
        self._generators = list(generators)
        self._rngs = spawn_rngs(rng, len(self._generators))

    @property
    def generators(self) -> List[PathGenerator]:
        return list(self._generators)

    def mean_usage(self, num_links: int) -> np.ndarray:
        """The exact mean per-slot path-usage vector ``F``."""
        usage = np.zeros(num_links, dtype=float)
        for generator in self._generators:
            usage += generator.mean_usage(num_links)
        return usage

    def injection_rate(self, model: InterferenceModel) -> float:
        """The exact rate ``lambda = ||W . F||_inf`` under ``model``."""
        return model.injection_norm(self.mean_usage(model.num_links))

    def packets_for_slot(self, slot: int) -> List[Packet]:
        packets: List[Packet] = []
        for generator, rng in zip(self._generators, self._rngs):
            draw = rng.random()
            cumulative = 0.0
            for path, probability in generator.distribution:
                cumulative += probability
                if draw < cumulative:
                    packets.append(self._new_packet(path, slot))
                    break
        return packets

    def packets_for_range(self, start_slot: int, end_slot: int) -> List[Packet]:
        """Batch sampling: one multinomial per generator per range.

        Over ``L`` slots a generator injects a multinomially distributed
        number of packets per path (``L`` trials over the path
        probabilities plus the idle remainder) — identical in
        distribution to ``L`` independent per-slot draws. Injection
        slots are stamped uniformly inside the range; the dynamic
        protocol only consumes whole-frame batches, so the stamps only
        affect latency bookkeeping, for which uniform placement is the
        faithful marginal.
        """
        length = end_slot - start_slot
        if length <= 0:
            return []
        packets: List[Packet] = []
        for generator, rng in zip(self._generators, self._rngs):
            probabilities = [p for _, p in generator.distribution]
            idle = max(0.0, 1.0 - sum(probabilities))
            counts = rng.multinomial(length, probabilities + [idle])
            for (path, _), count in zip(generator.distribution, counts):
                if not count:
                    continue
                # One batched draw per path reads the generator stream
                # exactly like `count` scalar draws did.
                slots = rng.integers(length, size=int(count))
                for slot in slots.tolist():
                    packets.append(self._new_packet(path, start_slot + slot))
        packets.sort(key=lambda p: (p.injected_at, p.id))
        return packets


def uniform_pair_injection(
    routing: RoutingTable,
    model: InterferenceModel,
    target_rate: float,
    num_generators: int = 1,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    rng: RngLike = None,
) -> StochasticInjection:
    """Injection uniform over routed pairs, scaled to an exact target rate.

    Builds ``num_generators`` identical generators, each uniform over
    the given source/destination ``pairs`` (default: every routed pair),
    then scales the per-path probabilities so that the aggregate
    injection rate under ``model`` is exactly ``target_rate``.

    Raises if the target rate would force some generator above one
    packet per slot (property (c)) — use more generators in that case.
    """
    if target_rate < 0:
        raise ConfigurationError(f"target_rate must be >= 0, got {target_rate}")
    if num_generators < 1:
        raise ConfigurationError(
            f"num_generators must be >= 1, got {num_generators}"
        )
    if pairs is None:
        pairs = routing.pairs()
    if not pairs:
        raise ConfigurationError("no routed pairs available for injection")
    paths = [routing.path(s, d) for s, d in pairs]
    base_probability = 1.0 / len(paths)
    base = PathGenerator([(path, base_probability) for path in paths])
    base_rate = model.injection_norm(
        sum(
            (base.mean_usage(model.num_links) for _ in range(num_generators)),
            np.zeros(model.num_links),
        )
    )
    if base_rate <= 0:
        raise ConfigurationError("base injection rate is zero; cannot scale")
    factor = target_rate / base_rate
    if base.total_probability * factor > 1.0 + 1e-9:
        raise ConfigurationError(
            f"target rate {target_rate} needs per-generator injection "
            f"probability {base.total_probability * factor:.3f} > 1; "
            "increase num_generators"
        )
    generators = [base.scaled(factor) for _ in range(num_generators)]
    return StochasticInjection(generators, rng=rng)


__all__ = ["PathGenerator", "StochasticInjection", "uniform_pair_injection"]
