"""Struct-of-arrays packet state — the vectorized packet layer.

The object-per-packet design (:class:`~repro.injection.packet.Packet`)
is fine for tens of thousands of packets; protocol-level bookkeeping
(request gathering, hop advancement, failure filing) then costs one
Python attribute walk per packet per frame and dominates large dynamic
runs now that the slot kernel is vectorized. :class:`PacketStore` keeps
the same state as parallel numpy arrays instead:

* ``injected_at`` / ``delivered_at`` / ``hops_done`` /
  ``failed_at_frame`` — one int64 entry per packet (``-1`` marks "not
  yet" for the latter two), plus a ``failed`` bool flag;
* CSR path storage — a flat ``path_links`` array plus ``offsets`` of
  length ``n + 1``; packet ``i``'s path is
  ``path_links[offsets[i] : offsets[i + 1]]``.

Store indices double as packet ids (injection processes allocate
sequentially, exactly like the old per-process ``itertools.count``), so
the id stream is unchanged. The protocol's hot loops operate on index
arrays; everything a :class:`Packet` used to answer is one gather, e.g.
the phase-1 request vector is ``path_links[offsets[idx] + hops_done[idx]]``.

For API compatibility every packet remains addressable as an object:
:meth:`PacketStore.view` returns a :class:`PacketView`, a lazy
read-write proxy with the full :class:`Packet` surface (mutations write
through to the arrays), and :class:`PacketSequence` wraps an index list
as a lazy ``Sequence[PacketView]`` (what ``protocol.delivered``
returns in store mode).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import TopologyError

_NOT_YET = -1


class PacketStore:
    """Growable struct-of-arrays packet state shared by injection and
    protocol layers.

    One store per simulation: injection processes allocate packets into
    it (the allocation order defines packet ids) and the dynamic
    protocol mutates hop/delivery/failure state through it.
    """

    def __init__(self, capacity: int = 1024, path_capacity: int = 4096):
        capacity = max(1, int(capacity))
        path_capacity = max(1, int(path_capacity))
        self._n = 0
        self._path_used = 0
        self._injected_at = np.zeros(capacity, dtype=np.int64)
        self._delivered_at = np.full(capacity, _NOT_YET, dtype=np.int64)
        self._hops_done = np.zeros(capacity, dtype=np.int64)
        self._failed_at_frame = np.full(capacity, _NOT_YET, dtype=np.int64)
        self._failed = np.zeros(capacity, dtype=bool)
        self._offsets = np.zeros(capacity + 1, dtype=np.int64)
        self._path_links = np.zeros(path_capacity, dtype=np.int64)
        self._min_link = None
        self._max_link = None

    # ------------------------------------------------------------------
    # Size and growth
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def size(self) -> int:
        """Packets allocated so far (also the next packet id)."""
        return self._n

    def _grow_packets(self, needed: int) -> None:
        capacity = self._injected_at.size
        if self._n + needed <= capacity:
            return
        new = max(capacity * 2, self._n + needed)
        for name in (
            "_injected_at",
            "_delivered_at",
            "_hops_done",
            "_failed_at_frame",
            "_failed",
        ):
            old = getattr(self, name)
            fill = _NOT_YET if name in ("_delivered_at", "_failed_at_frame") else 0
            grown = np.full(new, fill, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)
        offsets = np.zeros(new + 1, dtype=np.int64)
        offsets[: self._n + 1] = self._offsets[: self._n + 1]
        self._offsets = offsets

    def _grow_paths(self, needed: int) -> None:
        capacity = self._path_links.size
        if self._path_used + needed <= capacity:
            return
        new = max(capacity * 2, self._path_used + needed)
        grown = np.zeros(new, dtype=np.int64)
        grown[: self._path_used] = self._path_links[: self._path_used]
        self._path_links = grown

    # ------------------------------------------------------------------
    # Allocation (injection side)
    # ------------------------------------------------------------------

    def allocate(self, path: Sequence[int], injected_at: int) -> int:
        """Append one packet; returns its index (== packet id)."""
        links = np.asarray(path, dtype=np.int64)
        if links.ndim != 1 or links.size == 0:
            raise TopologyError(
                f"packet {self._n} has an empty path"
            )
        self._grow_packets(1)
        self._grow_paths(links.size)
        index = self._n
        start = self._path_used
        self._path_links[start : start + links.size] = links
        self._path_used = start + links.size
        self._offsets[index + 1] = self._path_used
        self._injected_at[index] = injected_at
        self._n = index + 1
        self._note_links(links)
        return index

    def allocate_flat(
        self,
        links_flat: np.ndarray,
        lengths: np.ndarray,
        injected_at: np.ndarray,
    ) -> np.ndarray:
        """Append many packets from pre-flattened CSR pieces.

        ``links_flat`` is the concatenation of every new packet's path,
        ``lengths`` the per-packet path lengths (so
        ``links_flat.size == lengths.sum()``), ``injected_at`` the
        per-packet slot stamps. One call allocates a whole frame's
        batch — equivalent to :meth:`allocate` per packet, in order.
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        count = int(lengths.size)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if (lengths <= 0).any():
            raise TopologyError(f"packet {self._n} has an empty path")
        links_flat = np.asarray(links_flat, dtype=np.int64)
        total = int(links_flat.size)
        if total != int(lengths.sum()):
            raise TopologyError(
                f"flat path storage has {total} links but lengths sum to "
                f"{int(lengths.sum())}"
            )
        self._grow_packets(count)
        self._grow_paths(total)
        first = self._n
        start = self._path_used
        self._path_links[start : start + total] = links_flat
        self._path_used = start + total
        self._offsets[first + 1 : first + count + 1] = start + np.cumsum(
            lengths
        )
        self._injected_at[first : first + count] = injected_at
        self._n = first + count
        self._note_links(links_flat)
        return np.arange(first, first + count, dtype=np.int64)

    def _note_links(self, links: np.ndarray) -> None:
        low = int(links.min())
        high = int(links.max())
        if self._min_link is None or low < self._min_link:
            self._min_link = low
        if self._max_link is None or high > self._max_link:
            self._max_link = high

    def link_id_bounds(self) -> Optional[Tuple[int, int]]:
        """(min, max) link id over every stored path; ``None`` if empty."""
        if self._min_link is None:
            return None
        return (self._min_link, self._max_link)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def state_dict(self, copy: bool = True) -> dict:
        """Copies of the live (trimmed) arrays plus the scalar counters.

        ``copy=False`` returns the live trimmed views instead — cheaper
        for a caller that serializes the snapshot immediately, but the
        arrays alias the store and must not be kept across mutations.
        """
        arrays = {
            "injected_at": self.injected_at,
            "delivered_at": self.delivered_at,
            "hops_done": self.hops_done,
            "failed_at_frame": self.failed_at_frame,
            "failed": self.failed,
            "offsets": self.offsets,
            "path_links": self.path_links,
        }
        if copy:
            arrays = {key: value.copy() for key, value in arrays.items()}
        return {
            "n": self._n,
            "path_used": self._path_used,
            "min_link": self._min_link,
            "max_link": self._max_link,
            **arrays,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot, replacing all contents.

        Raises :class:`repro.errors.ConfigurationError` when the
        snapshot's arrays are inconsistent with its counters.
        """
        from repro.errors import ConfigurationError

        try:
            n = int(state["n"])
            path_used = int(state["path_used"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"invalid store state: {exc}") from exc
        specs = {
            "injected_at": (np.int64, n),
            "delivered_at": (np.int64, n),
            "hops_done": (np.int64, n),
            "failed_at_frame": (np.int64, n),
            "failed": (np.bool_, n),
            "offsets": (np.int64, n + 1),
            "path_links": (np.int64, path_used),
        }
        arrays = {}
        for key, (dtype, size) in specs.items():
            if key not in state:
                raise ConfigurationError(f"store state is missing '{key}'")
            arr = np.asarray(state[key])
            if arr.ndim != 1 or arr.size != size or arr.dtype != np.dtype(dtype):
                raise ConfigurationError(
                    f"store state '{key}' must be a 1-d {np.dtype(dtype)} "
                    f"array of size {size}, got shape {arr.shape} dtype "
                    f"{arr.dtype}"
                )
            arrays[key] = arr
        capacity = max(1, n)
        self._n = n
        self._path_used = path_used
        for key in ("injected_at", "delivered_at", "hops_done", "failed_at_frame"):
            fill = _NOT_YET if key in ("delivered_at", "failed_at_frame") else 0
            backing = np.full(capacity, fill, dtype=np.int64)
            backing[:n] = arrays[key]
            setattr(self, "_" + key, backing)
        failed = np.zeros(capacity, dtype=bool)
        failed[:n] = arrays["failed"]
        self._failed = failed
        offsets = np.zeros(capacity + 1, dtype=np.int64)
        offsets[: n + 1] = arrays["offsets"]
        self._offsets = offsets
        path_links = np.zeros(max(1, path_used), dtype=np.int64)
        path_links[:path_used] = arrays["path_links"]
        self._path_links = path_links
        min_link = state.get("min_link")
        max_link = state.get("max_link")
        self._min_link = None if min_link is None else int(min_link)
        self._max_link = None if max_link is None else int(max_link)

    # ------------------------------------------------------------------
    # Compaction (summarize-and-release support)
    # ------------------------------------------------------------------

    def compact(self, keep: np.ndarray) -> None:
        """Retain exactly the packets in ``keep``, dropping the rest.

        ``keep`` must be a strictly increasing array of valid indices.
        Retained packet ``keep[j]`` becomes index ``j`` — the mapping
        is order-preserving, so callers can remap any held index arrays
        with ``np.searchsorted(keep, old)``. Link-id bounds are kept
        as-is (a conservative superset is fine for validation). The
        next allocation gets index ``len(keep)``.
        """
        from repro.errors import ConfigurationError

        keep = np.asarray(keep, dtype=np.int64)
        if keep.ndim != 1:
            raise ConfigurationError(
                f"compact keep set must be 1-d, got shape {keep.shape}"
            )
        k = int(keep.size)
        if k:
            if int(keep[0]) < 0 or int(keep[-1]) >= self._n:
                raise ConfigurationError(
                    f"compact keep set falls outside 0..{self._n - 1}"
                )
            if k > 1 and (np.diff(keep) <= 0).any():
                raise ConfigurationError(
                    "compact keep set must be strictly increasing"
                )
        lengths = self._offsets[keep + 1] - self._offsets[keep]
        total = int(lengths.sum())
        new_offsets = np.zeros(k + 1, dtype=np.int64)
        if k:
            np.cumsum(lengths, out=new_offsets[1:])
        capacity = max(1024, k)
        for name in ("_injected_at", "_delivered_at", "_hops_done",
                     "_failed_at_frame", "_failed"):
            old = getattr(self, name)
            fill = (
                _NOT_YET
                if name in ("_delivered_at", "_failed_at_frame")
                else 0
            )
            backing = np.full(capacity, fill, dtype=old.dtype)
            backing[:k] = old[keep]
            setattr(self, name, backing)
        offsets = np.zeros(capacity + 1, dtype=np.int64)
        offsets[: k + 1] = new_offsets
        path_capacity = max(4096, total)
        paths = np.zeros(path_capacity, dtype=np.int64)
        if total:
            # Gather every kept CSR row in one shot: for row j the
            # source positions are starts[j] + (0..lengths[j]-1).
            starts = self._offsets[keep]
            gather = (
                np.repeat(starts - new_offsets[:-1], lengths)
                + np.arange(total, dtype=np.int64)
            )
            paths[:total] = self._path_links[gather]
        self._offsets = offsets
        self._path_links = paths
        self._n = k
        self._path_used = total

    # ------------------------------------------------------------------
    # Array access (trimmed live views — re-fetch after allocations,
    # growth may reallocate the backing buffers)
    # ------------------------------------------------------------------

    @property
    def injected_at(self) -> np.ndarray:
        return self._injected_at[: self._n]

    @property
    def delivered_at(self) -> np.ndarray:
        return self._delivered_at[: self._n]

    @property
    def hops_done(self) -> np.ndarray:
        return self._hops_done[: self._n]

    @property
    def failed_at_frame(self) -> np.ndarray:
        return self._failed_at_frame[: self._n]

    @property
    def failed(self) -> np.ndarray:
        return self._failed[: self._n]

    @property
    def offsets(self) -> np.ndarray:
        return self._offsets[: self._n + 1]

    @property
    def path_links(self) -> np.ndarray:
        return self._path_links[: self._path_used]

    # ------------------------------------------------------------------
    # Vectorized per-packet queries (the protocol hot path)
    # ------------------------------------------------------------------

    def path_lengths(self, indices: np.ndarray) -> np.ndarray:
        return self._offsets[indices + 1] - self._offsets[indices]

    def current_links(self, indices: np.ndarray) -> np.ndarray:
        """Next link to cross, for each index — one CSR gather."""
        return self._path_links[self._offsets[indices] + self._hops_done[indices]]

    def remaining_hops(self, indices: np.ndarray) -> np.ndarray:
        return self.path_lengths(indices) - self._hops_done[indices]

    def advance_hops(self, indices: np.ndarray, slot: int) -> np.ndarray:
        """Record one completed hop for each index.

        Returns the boolean "now delivered" mask aligned with
        ``indices``; delivered packets get ``delivered_at`` stamped with
        ``slot``.
        """
        hops = self._hops_done[indices] + 1
        self._hops_done[indices] = hops
        done = hops >= self.path_lengths(indices)
        if done.any():
            self._delivered_at[indices[done]] = slot
        return done

    def mark_failed(self, indices: np.ndarray, frame: int) -> None:
        """First phase-1 failure: flag and stamp the failure frame."""
        self._failed[indices] = True
        self._failed_at_frame[indices] = frame

    def advance_one(self, index: int, slot: int) -> bool:
        """Scalar :meth:`advance_hops` (the clean-up path serves few)."""
        hops = self._hops_done[index] + 1
        self._hops_done[index] = hops
        if hops >= self._offsets[index + 1] - self._offsets[index]:
            self._delivered_at[index] = slot
            return True
        return False

    def current_link_of(self, index: int) -> int:
        """Scalar :meth:`current_links`."""
        return int(
            self._path_links[self._offsets[index] + self._hops_done[index]]
        )

    def latencies(self, indices: np.ndarray) -> np.ndarray:
        """Delivery minus injection slot for delivered indices."""
        delivered = self._delivered_at[indices]
        if (delivered == _NOT_YET).any():
            bad = int(np.asarray(indices)[delivered == _NOT_YET][0])
            raise TopologyError(f"packet {bad} not delivered yet")
        return delivered - self._injected_at[indices]

    # ------------------------------------------------------------------
    # Scalar / object compatibility
    # ------------------------------------------------------------------

    def path_of(self, index: int) -> Tuple[int, ...]:
        start = self._offsets[index]
        end = self._offsets[index + 1]
        return tuple(int(e) for e in self._path_links[start:end])

    def view(self, index: int) -> "PacketView":
        """A lazy read-write :class:`Packet`-compatible proxy."""
        return PacketView(self, int(index))

    def views(self, indices: Sequence[int]) -> List["PacketView"]:
        return [PacketView(self, int(i)) for i in indices]

    def sequence(self, indices) -> "PacketSequence":
        return PacketSequence(self, indices)


class PacketView:
    """Lazy :class:`Packet`-API proxy over one :class:`PacketStore` row.

    Attribute reads gather from the arrays; mutations (``advance``,
    ``failed = True``, ...) write through, so object-path code
    (the compatibility :class:`~repro.core.protocol.DynamicProtocol`
    mode, metrics, analyses) runs unchanged on store-backed packets.
    """

    __slots__ = ("_store", "index")

    def __init__(self, store: PacketStore, index: int):
        self._store = store
        self.index = index

    # Identity -----------------------------------------------------------

    @property
    def store(self) -> PacketStore:
        """The backing store (consumers use it to check ownership)."""
        return self._store

    @property
    def id(self) -> int:
        return self.index

    @property
    def path(self) -> Tuple[int, ...]:
        return self._store.path_of(self.index)

    @property
    def injected_at(self) -> int:
        return int(self._store._injected_at[self.index])

    # Mutable state ------------------------------------------------------

    @property
    def hops_done(self) -> int:
        return int(self._store._hops_done[self.index])

    @hops_done.setter
    def hops_done(self, value: int) -> None:
        self._store._hops_done[self.index] = value

    @property
    def delivered_at(self) -> Optional[int]:
        value = int(self._store._delivered_at[self.index])
        return None if value == _NOT_YET else value

    @delivered_at.setter
    def delivered_at(self, value: Optional[int]) -> None:
        self._store._delivered_at[self.index] = (
            _NOT_YET if value is None else value
        )

    @property
    def failed(self) -> bool:
        return bool(self._store._failed[self.index])

    @failed.setter
    def failed(self, value: bool) -> None:
        self._store._failed[self.index] = bool(value)

    @property
    def failed_at_frame(self) -> Optional[int]:
        value = int(self._store._failed_at_frame[self.index])
        return None if value == _NOT_YET else value

    @failed_at_frame.setter
    def failed_at_frame(self, value: Optional[int]) -> None:
        self._store._failed_at_frame[self.index] = (
            _NOT_YET if value is None else value
        )

    # Derived queries (the Packet API) -----------------------------------

    @property
    def path_length(self) -> int:
        store = self._store
        return int(store._offsets[self.index + 1] - store._offsets[self.index])

    @property
    def current_link(self) -> int:
        if self.is_delivered:
            raise TopologyError(f"packet {self.index} already delivered")
        store = self._store
        return int(
            store._path_links[
                store._offsets[self.index] + store._hops_done[self.index]
            ]
        )

    @property
    def remaining_hops(self) -> int:
        return self.path_length - self.hops_done

    @property
    def is_delivered(self) -> bool:
        return self.hops_done >= self.path_length

    def advance(self, slot: int) -> bool:
        if self.is_delivered:
            raise TopologyError(f"packet {self.index} advanced past delivery")
        self._store._hops_done[self.index] += 1
        if self.is_delivered:
            self._store._delivered_at[self.index] = slot
            return True
        return False

    def latency(self) -> int:
        delivered = self.delivered_at
        if delivered is None:
            raise TopologyError(f"packet {self.index} not delivered yet")
        return delivered - self.injected_at

    def __repr__(self) -> str:
        return (
            f"PacketView(id={self.index}, path={self.path}, "
            f"injected_at={self.injected_at}, hops_done={self.hops_done})"
        )


class PacketSequence(Sequence):
    """Lazy ``Sequence[PacketView]`` over store indices.

    ``protocol.delivered`` returns one of these in store mode: ``len``
    is O(1), iteration materialises views on demand, and vector
    consumers (:class:`~repro.sim.metrics.LatencySummary`) read
    :attr:`indices` / :attr:`store` directly instead of looping.
    """

    __slots__ = ("_store", "_indices")

    def __init__(self, store: PacketStore, indices):
        self._store = store
        self._indices = indices

    @property
    def store(self) -> PacketStore:
        return self._store

    @property
    def indices(self) -> np.ndarray:
        return np.asarray(self._indices, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._indices)

    def __getitem__(
        self, key: Union[int, slice]
    ) -> Union["PacketView", List["PacketView"]]:
        if isinstance(key, slice):
            return [PacketView(self._store, int(i)) for i in self._indices[key]]
        return PacketView(self._store, int(self._indices[key]))

    def __iter__(self) -> Iterator["PacketView"]:
        store = self._store
        for index in self._indices:
            yield PacketView(store, int(index))


__all__ = ["PacketStore", "PacketView", "PacketSequence"]
