"""Packet injection: the paper's two arrival models (Section 2.1).

* **Stochastic** — a finite set of generators; in every slot each
  generator independently injects at most one packet, with a
  time-invariant distribution over paths. The injection rate is
  ``lambda = ||W . F||_inf`` for the mean per-slot path-usage vector
  ``F``.
* **Adversarial** — a ``(w, lambda)``-bounded window adversary: in any
  window of ``w`` consecutive slots, the interference measure of
  everything injected is at most ``w * lambda``.

Both produce :class:`~repro.injection.packet.Packet` objects carrying a
fixed link path. :class:`~repro.injection.adversarial.WindowAudit`
verifies the window constraint of any adversary empirically — used both
in tests and to certify hand-written adversaries before experiments.

Beyond the paper, :mod:`repro.injection.markov` adds bursty-but-
stationary processes (Markov-modulated ON/OFF gating, Poisson batch
arrivals) that each relax exactly one property of the stochastic model
— controlled stress tests between the two paper models.
"""

from repro.injection.packet import Packet
from repro.injection.store import PacketSequence, PacketStore, PacketView
from repro.injection.base import InjectionProcess
from repro.injection.stochastic import (
    PathGenerator,
    StochasticInjection,
    uniform_pair_injection,
)
from repro.injection.adversarial import (
    BurstyAdversary,
    SawtoothAdversary,
    SmoothAdversary,
    TargetedAdversary,
    WindowAdversary,
    WindowAudit,
)
from repro.injection.markov import (
    MarkovModulatedInjection,
    PoissonBatchInjection,
    empirical_usage,
)
from repro.injection.rates import injection_rate_of_distribution, scale_to_rate

__all__ = [
    "Packet",
    "PacketStore",
    "PacketView",
    "PacketSequence",
    "InjectionProcess",
    "StochasticInjection",
    "PathGenerator",
    "uniform_pair_injection",
    "WindowAdversary",
    "SmoothAdversary",
    "BurstyAdversary",
    "SawtoothAdversary",
    "TargetedAdversary",
    "WindowAudit",
    "MarkovModulatedInjection",
    "PoissonBatchInjection",
    "empirical_usage",
    "injection_rate_of_distribution",
    "scale_to_rate",
]
