"""The injection-process interface.

An injection process is an iterator over slots: ``packets_for_slot(t)``
returns the packets injected in slot ``t`` (possibly empty). Processes
are deterministic functions of their seed, and slots must be queried in
increasing order (the engine does), though repeated queries for the
same slot are allowed and cached for the adversaries that precompute
windows.

Every process emits into a :class:`~repro.injection.store.PacketStore`
(its own by default, or a shared one passed at construction): the
built-in processes implement :meth:`indices_for_slot`, allocating
struct-of-arrays rows and returning store indices, and the
``packets_for_*`` methods wrap those indices as lazy
:class:`~repro.injection.store.PacketView` objects. The store index
*is* the packet id — allocation order matches the old per-process
``itertools.count`` stream exactly. The frame engine feeds index
arrays straight to a store-mode protocol and never materialises views;
object-mode callers see the same ``List[Packet]``-shaped API as before.

Subclasses outside this package may still override
``packets_for_slot`` directly (object mode only); the engine falls
back to object batches whenever protocol and injection do not share a
store.
"""

from __future__ import annotations

from abc import ABC
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.injection.store import PacketStore, PacketView


class InjectionProcess(ABC):
    """Produces the packets injected at each slot."""

    def __init__(self, store: Optional[PacketStore] = None):
        if self._is_legacy() and type(self).packets_for_slot is (
            InjectionProcess.packets_for_slot
        ):
            # Neither emission hook is overridden: fail at construction
            # (the old ABC's abstract packets_for_slot did the same).
            raise TypeError(
                f"{type(self).__name__} must implement indices_for_slot "
                "or packets_for_slot"
            )
        self._store = store if store is not None else PacketStore()

    @classmethod
    def _is_legacy(cls) -> bool:
        """Whether only ``packets_for_slot`` is overridden (object mode)."""
        return (
            cls.indices_for_slot is InjectionProcess.indices_for_slot
            and cls.indices_for_range is InjectionProcess.indices_for_range
        )

    @property
    def store(self) -> PacketStore:
        """The packet store this process allocates into."""
        return self._store

    def indices_for_slot(self, slot: int) -> Sequence[int]:
        """Store indices of the packets injected in slot ``slot``.

        Built-in processes implement this; legacy subclasses that only
        override :meth:`packets_for_slot` never reach it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement indices_for_slot"
        )

    def indices_for_range(self, start_slot: int, end_slot: int) -> np.ndarray:
        """Store indices injected in ``[start_slot, end_slot)`` as int64.

        The default iterates slots; processes with cheap batch sampling
        (e.g. the stochastic model, where only the per-frame multiset
        matters to the protocol) override this with an equivalent
        distribution sampled in one shot.
        """
        out: List[int] = []
        for slot in range(start_slot, end_slot):
            out.extend(self.indices_for_slot(slot))
        return np.asarray(out, dtype=np.int64)

    def packets_for_slot(self, slot: int) -> List[PacketView]:
        """Packets injected in slot ``slot`` (fresh list, caller owns it)."""
        return self._store.views(self.indices_for_slot(slot))

    def packets_for_range(self, start_slot: int, end_slot: int) -> List:
        """Packets injected in slots ``[start_slot, end_slot)``.

        Index-emitting processes materialise one batch of views; legacy
        subclasses that only override :meth:`packets_for_slot` get the
        old slot-iterating fallback.
        """
        if self._is_legacy():
            packets: List = []
            for slot in range(start_slot, end_slot):
                packets.extend(self.packets_for_slot(slot))
            return packets
        return self._store.views(self.indices_for_range(start_slot, end_slot))

    def _allocate(self, path, slot: int) -> int:
        """Allocate a packet with the next sequential id; returns its index.

        The built-in index-emitting processes use this in
        ``indices_for_slot``/``indices_for_range``.
        """
        return self._store.allocate(path, slot)

    def _new_packet(self, path, slot: int) -> PacketView:
        """Allocate a packet and return it as a Packet-compatible view.

        Kept for legacy subclasses that build ``packets_for_slot``
        batches with this helper — it must keep returning an object
        with the ``Packet`` surface, not a bare index.
        """
        return self._store.view(self._allocate(path, slot))

    def stream(self, horizon: int) -> Iterator[List[PacketView]]:
        """Iterate packet batches for slots ``0 .. horizon-1``."""
        for slot in range(horizon):
            yield self.packets_for_slot(slot)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable snapshot of the process's mutable state.

        The built-in processes override this (their state is RNG
        streams plus, for the adversaries, cached window plans). The
        base implementation refuses: a process without explicit
        checkpoint support cannot guarantee resume parity.
        """
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"{type(self).__name__} does not support checkpointing "
            "(no state_dict)"
        )

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"{type(self).__name__} does not support checkpointing "
            "(no load_state_dict)"
        )


__all__ = ["InjectionProcess"]
