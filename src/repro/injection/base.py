"""The injection-process interface.

An injection process is an iterator over slots: ``packets_for_slot(t)``
returns the packets injected in slot ``t`` (possibly empty). Processes
are deterministic functions of their seed, and slots must be queried in
increasing order (the engine does), though repeated queries for the
same slot are allowed and cached for the adversaries that precompute
windows.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Iterator, List

from repro.injection.packet import Packet


class InjectionProcess(ABC):
    """Produces the packets injected at each slot."""

    def __init__(self):
        self._ids = itertools.count()

    @abstractmethod
    def packets_for_slot(self, slot: int) -> List[Packet]:
        """Packets injected in slot ``slot`` (fresh list, caller owns it)."""

    def packets_for_range(self, start_slot: int, end_slot: int) -> List[Packet]:
        """Packets injected in slots ``[start_slot, end_slot)``.

        The default iterates slots; processes with cheap batch sampling
        (e.g. the stochastic model, where only the per-frame multiset
        matters to the protocol) override this with an equivalent
        distribution sampled in one shot.
        """
        packets: List[Packet] = []
        for slot in range(start_slot, end_slot):
            packets.extend(self.packets_for_slot(slot))
        return packets

    def _new_packet(self, path, slot: int) -> Packet:
        """Create a packet with the next sequential id."""
        return Packet(id=next(self._ids), path=tuple(path), injected_at=slot)

    def stream(self, horizon: int) -> Iterator[List[Packet]]:
        """Iterate packet batches for slots ``0 .. horizon-1``."""
        for slot in range(horizon):
            yield self.packets_for_slot(slot)


__all__ = ["InjectionProcess"]
