"""The packet record.

A packet is injected at a slot with a fixed path (sequence of link ids,
paper Section 2); the protocol advances ``hops_done`` as hops complete.
Mutable by design — the protocol owns packet lifecycles — but the path
itself is an immutable tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import TopologyError


@dataclass
class Packet:
    """A packet travelling along a fixed multi-hop path.

    Attributes
    ----------
    id:
        Unique per simulation; assigned by the injection process.
    path:
        Link ids in traversal order, length >= 1.
    injected_at:
        Slot index of injection.
    hops_done:
        Number of completed hops (0 at injection).
    delivered_at:
        Slot index of final delivery, or ``None`` while in flight.
    failed:
        Whether the packet has ever failed in a phase-1 execution (the
        protocol then routes it through clean-up phases; Section 4).
    failed_at_frame:
        Frame index of the (first) failure, for age-ordering the failed
        buffers ("whose failure is longest ago").
    """

    id: int
    path: Tuple[int, ...]
    injected_at: int
    hops_done: int = 0
    delivered_at: Optional[int] = None
    failed: bool = False
    failed_at_frame: Optional[int] = None

    def __post_init__(self):
        if len(self.path) == 0:
            raise TopologyError(f"packet {self.id} has an empty path")
        self.path = tuple(int(e) for e in self.path)

    @property
    def path_length(self) -> int:
        """Total number of hops ``d``."""
        return len(self.path)

    @property
    def current_link(self) -> int:
        """The next link to cross."""
        if self.is_delivered:
            raise TopologyError(f"packet {self.id} already delivered")
        return self.path[self.hops_done]

    @property
    def remaining_hops(self) -> int:
        """Hops still to cross (the packet's potential contribution)."""
        return self.path_length - self.hops_done

    @property
    def is_delivered(self) -> bool:
        """Whether the packet has crossed its whole path."""
        return self.hops_done >= self.path_length

    def advance(self, slot: int) -> bool:
        """Record one completed hop; returns True if now delivered.

        ``slot`` stamps :attr:`delivered_at` when this was the last hop.
        """
        if self.is_delivered:
            raise TopologyError(f"packet {self.id} advanced past delivery")
        self.hops_done += 1
        if self.is_delivered:
            self.delivered_at = slot
            return True
        return False

    def latency(self) -> int:
        """Slots between injection and delivery (delivered packets only)."""
        if self.delivered_at is None:
            raise TopologyError(f"packet {self.id} not delivered yet")
        return self.delivered_at - self.injected_at


__all__ = ["Packet"]
