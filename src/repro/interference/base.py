"""The :class:`InterferenceModel` abstract base class.

An interference model couples a network with

1. an impact matrix ``W`` defining the linear interference measure
   ``I(R) = ||W . R||_inf`` of a request vector ``R`` (paper Section 2), and
2. a *success predicate*: given the set of links transmitting in a slot,
   which of those transmissions are received.

Conventions (fixed across the library):

* ``W[e, e']`` is the impact **on** link ``e`` **from** link ``e'``;
  ``W[e, e] = 1`` (the paper's normalisation).
* Request vectors ``R`` are float arrays indexed by link id; entries are
  multiplicities (a path visiting a link twice contributes 2).
* ``successes`` receives link ids with *set semantics*: each listed link
  makes one transmission attempt in the slot. Schedulers are responsible
  for never scheduling two packets on one link in the same slot (the
  paper's "via each communication link at most one packet may be
  transmitted per time step").

Batch evaluation
----------------
The scalar :meth:`InterferenceModel.successes` is the *reference*
semantics; the slot kernel (:mod:`repro.staticsched.kernel`) drives the
hot loop through two batch entry points instead:

* :meth:`InterferenceModel.successes_mask` — boolean mask in, boolean
  mask out; one call per slot, no Python-level set churn. The base
  implementation delegates to ``successes`` so every model supports it;
  vectorised models override it.
* :meth:`InterferenceModel.batch_evaluator` — returns a
  :class:`BatchSuccessEvaluator` bound to a run's (shrinking) busy set.
  Evaluators may cache active-set submatrices across slots and update
  them incrementally as links drain, which is where the large constant
  factors go away.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional, Sequence, Set, Union

import numpy as np

from repro.errors import ConfigurationError, SchedulingError
from repro.network.network import Network

RequestsLike = Union[np.ndarray, Sequence[int]]


class BatchSuccessEvaluator:
    """Per-run batch success evaluation bound to a fixed busy-link set.

    ``busy`` is a sorted array of link ids with pending work; all masks
    exchanged with the evaluator are *local* (aligned with ``busy``).
    As links drain, the kernel calls :meth:`drop` with a local keep
    mask; evaluators shrink their cached state in place instead of
    re-deriving it from the full ``W`` every slot.
    """

    def __init__(self, busy: np.ndarray):
        self._busy = np.asarray(busy, dtype=np.int64)

    @property
    def busy(self) -> np.ndarray:
        """The current busy-link ids (sorted ascending)."""
        return self._busy

    def successes_local(self, transmit_local: np.ndarray) -> np.ndarray:
        """Local success mask for a local transmit mask (one slot)."""
        raise NotImplementedError

    def drop(self, keep_local: np.ndarray) -> None:
        """Shrink to the kept busy links (links whose queues drained)."""
        self._busy = self._busy[keep_local]


class CachedBatchEvaluator(BatchSuccessEvaluator):
    """Base for evaluators that slice model state to the busy set once.

    Subclasses gather their caches (submatrices, gain tables) over the
    *initial* busy set and never copy them again; :attr:`_cols` maps
    current local indices into those frozen caches, so draining links
    costs O(survivors) instead of an O(busy^2) re-slice.
    """

    def __init__(self, busy: np.ndarray):
        super().__init__(busy)
        self._cols = np.arange(len(busy))

    def drop(self, keep_local: np.ndarray) -> None:
        self._cols = self._cols[keep_local]
        super().drop(keep_local)


class ScalarBatchEvaluator(BatchSuccessEvaluator):
    """Reference evaluator: one scalar ``successes()`` call per slot.

    This is the ground-truth path the vectorised evaluators are verified
    against (see ``repro.staticsched.kernel.scalar_reference``).
    """

    def __init__(self, model: "InterferenceModel", busy: np.ndarray):
        super().__init__(busy)
        self._model = model

    def successes_local(self, transmit_local: np.ndarray) -> np.ndarray:
        ids = self._busy[transmit_local]
        winners = self._model.successes([int(e) for e in ids])
        mask = np.zeros(self._busy.size, dtype=bool)
        if winners:
            winner_ids = np.fromiter(sorted(winners), dtype=np.int64)
            mask[np.searchsorted(self._busy, winner_ids)] = True
        return mask


class MaskBatchEvaluator(BatchSuccessEvaluator):
    """Default evaluator: routes each slot through ``successes_mask``.

    Used by models that vectorise the per-slot predicate but keep no
    cross-slot cache.
    """

    def __init__(self, model: "InterferenceModel", busy: np.ndarray):
        super().__init__(busy)
        self._model = model

    def successes_local(self, transmit_local: np.ndarray) -> np.ndarray:
        active = np.zeros(self._model.num_links, dtype=bool)
        active[self._busy[transmit_local]] = True
        return self._model.successes_mask(active)[self._busy]


def request_vector(num_links: int, link_ids: Iterable[int]) -> np.ndarray:
    """Build a request vector from link ids (multiplicities respected)."""
    vector = np.zeros(num_links, dtype=float)
    for link_id in link_ids:
        if not 0 <= link_id < num_links:
            raise SchedulingError(
                f"request references link id {link_id}, outside 0..{num_links - 1}"
            )
        vector[link_id] += 1.0
    return vector


class InterferenceModel(ABC):
    """Couples a network with an impact matrix and a success predicate."""

    def __init__(self, network: Network):
        self._network = network
        self._weight_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def network(self) -> Network:
        """The underlying network."""
        return self._network

    @property
    def num_links(self) -> int:
        """Number of links (dimension of ``W`` and of request vectors)."""
        return self._network.num_links

    # ------------------------------------------------------------------
    # The linear measure
    # ------------------------------------------------------------------

    @abstractmethod
    def _build_weight_matrix(self) -> np.ndarray:
        """Construct ``W``; called once, result cached."""

    def weight_matrix(self) -> np.ndarray:
        """The impact matrix ``W`` (cached; treat as read-only)."""
        if self._weight_cache is None:
            matrix = np.asarray(self._build_weight_matrix(), dtype=float)
            expected = (self.num_links, self.num_links)
            if matrix.shape != expected:
                raise ConfigurationError(
                    f"weight matrix has shape {matrix.shape}, expected {expected}"
                )
            if (matrix < 0).any() or (matrix > 1).any():
                raise ConfigurationError("weight matrix entries must lie in [0, 1]")
            if not np.allclose(np.diag(matrix), 1.0):
                raise ConfigurationError("weight matrix diagonal must be 1")
            matrix.setflags(write=False)
            self._weight_cache = matrix
        return self._weight_cache

    def weight(self, e: int, e_prime: int) -> float:
        """``W[e, e']`` — impact on ``e`` from ``e'``."""
        return float(self.weight_matrix()[e, e_prime])

    def as_request_vector(self, requests: RequestsLike) -> np.ndarray:
        """Normalise ``requests`` (vector or link-id list) to a vector."""
        if isinstance(requests, np.ndarray) and requests.dtype != object:
            if requests.shape != (self.num_links,):
                raise SchedulingError(
                    f"request vector has shape {requests.shape}, expected "
                    f"({self.num_links},)"
                )
            return requests.astype(float, copy=False)
        return request_vector(self.num_links, requests)

    def interference_measure(self, requests: RequestsLike) -> float:
        """``I = ||W . R||_inf`` for the given requests.

        The plain infinity norm over *all* rows, exactly as in the
        paper's Section 2 (``I := max_e sum_e' W[e, e'] R(e')``). Taking
        all rows (not just requested links') keeps the measure monotone
        *and sub-additive* in ``R`` — properties both the transformation
        analysis and the window-adversary budget arithmetic rely on.
        """
        vector = self.as_request_vector(requests)
        if vector.sum() == 0:
            return 0.0
        return float((self.weight_matrix() @ vector).max())

    def injection_norm(self, average_rates: RequestsLike) -> float:
        """``||W . F||_inf`` — the paper's injection rate of a mean-usage vector.

        Numerically the same norm as :meth:`interference_measure`; kept
        as a separate entry point because the argument is a *rate*
        (packets per slot in expectation), not a packet count.
        """
        vector = self.as_request_vector(average_rates)
        return float((self.weight_matrix() @ vector).max()) if vector.size else 0.0

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    @abstractmethod
    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        """Which of the simultaneously transmitting links are received.

        ``transmitting`` must not contain duplicates (one transmission
        per link per slot).
        """

    def successes_mask(self, active: np.ndarray) -> np.ndarray:
        """Batch form of :meth:`successes`: bool mask in, bool mask out.

        ``active[e]`` says whether link ``e`` transmits this slot; the
        result marks the links whose transmissions are received (always
        a subset of ``active``). The boolean encoding makes duplicate
        transmissions unrepresentable, so no duplicate check is needed.

        The base implementation delegates to the scalar reference;
        vectorised models override it with pure array arithmetic.
        """
        active = self._as_active_mask(active)
        winners = self.successes([int(e) for e in np.flatnonzero(active)])
        mask = np.zeros(self.num_links, dtype=bool)
        if winners:
            mask[np.fromiter(winners, dtype=np.int64)] = True
        return mask

    def batch_evaluator(self, busy: np.ndarray) -> BatchSuccessEvaluator:
        """A per-run evaluator bound to the sorted busy-link ids ``busy``.

        Models with cacheable structure (submatrices of ``W``, gain
        tables...) override this to return evaluators that slice their
        cache once per run and update it incrementally via
        :meth:`BatchSuccessEvaluator.drop` as links drain.
        """
        return MaskBatchEvaluator(self, busy)

    def singleton_succeeds(self, link_id: int) -> bool:
        """Whether a lone transmission on ``link_id`` is received."""
        return link_id in self.successes([link_id])

    def check_all_singletons(self) -> None:
        """Raise if some link cannot even transmit alone.

        Protocols assume every link is individually usable; models built
        from bad geometry (e.g. SINR with too much noise) can violate
        this, and it is better to fail loudly at setup.
        """
        for link in range(self.num_links):
            if not self.singleton_succeeds(link):
                raise ConfigurationError(
                    f"link {link} cannot succeed even transmitting alone"
                )

    def feasible_set(self, transmitting: Sequence[int]) -> bool:
        """Whether *all* the given links succeed simultaneously."""
        attempted = set(transmitting)
        return self.successes(transmitting) == attempted

    def _as_active_mask(self, active: np.ndarray) -> np.ndarray:
        active = np.asarray(active, dtype=bool)
        if active.shape != (self.num_links,):
            raise SchedulingError(
                f"active mask has shape {active.shape}, expected "
                f"({self.num_links},)"
            )
        return active

    def _check_no_duplicates(self, transmitting: Sequence[int]) -> Set[int]:
        attempted = set(transmitting)
        if len(attempted) != len(list(transmitting)):
            raise SchedulingError(
                "duplicate link ids in one slot: a link transmits at most one "
                "packet per time step"
            )
        return attempted


__all__ = [
    "InterferenceModel",
    "request_vector",
    "RequestsLike",
    "BatchSuccessEvaluator",
    "CachedBatchEvaluator",
    "ScalarBatchEvaluator",
    "MaskBatchEvaluator",
]
