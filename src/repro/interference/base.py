"""The :class:`InterferenceModel` abstract base class.

An interference model couples a network with

1. an impact matrix ``W`` defining the linear interference measure
   ``I(R) = ||W . R||_inf`` of a request vector ``R`` (paper Section 2), and
2. a *success predicate*: given the set of links transmitting in a slot,
   which of those transmissions are received.

Conventions (fixed across the library):

* ``W[e, e']`` is the impact **on** link ``e`` **from** link ``e'``;
  ``W[e, e] = 1`` (the paper's normalisation).
* Request vectors ``R`` are float arrays indexed by link id; entries are
  multiplicities (a path visiting a link twice contributes 2).
* ``successes`` receives link ids with *set semantics*: each listed link
  makes one transmission attempt in the slot. Schedulers are responsible
  for never scheduling two packets on one link in the same slot (the
  paper's "via each communication link at most one packet may be
  transmitted per time step").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional, Sequence, Set, Union

import numpy as np

from repro.errors import ConfigurationError, SchedulingError
from repro.network.network import Network

RequestsLike = Union[np.ndarray, Sequence[int]]


def request_vector(num_links: int, link_ids: Iterable[int]) -> np.ndarray:
    """Build a request vector from link ids (multiplicities respected)."""
    vector = np.zeros(num_links, dtype=float)
    for link_id in link_ids:
        if not 0 <= link_id < num_links:
            raise SchedulingError(
                f"request references link id {link_id}, outside 0..{num_links - 1}"
            )
        vector[link_id] += 1.0
    return vector


class InterferenceModel(ABC):
    """Couples a network with an impact matrix and a success predicate."""

    def __init__(self, network: Network):
        self._network = network
        self._weight_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def network(self) -> Network:
        """The underlying network."""
        return self._network

    @property
    def num_links(self) -> int:
        """Number of links (dimension of ``W`` and of request vectors)."""
        return self._network.num_links

    # ------------------------------------------------------------------
    # The linear measure
    # ------------------------------------------------------------------

    @abstractmethod
    def _build_weight_matrix(self) -> np.ndarray:
        """Construct ``W``; called once, result cached."""

    def weight_matrix(self) -> np.ndarray:
        """The impact matrix ``W`` (cached; treat as read-only)."""
        if self._weight_cache is None:
            matrix = np.asarray(self._build_weight_matrix(), dtype=float)
            expected = (self.num_links, self.num_links)
            if matrix.shape != expected:
                raise ConfigurationError(
                    f"weight matrix has shape {matrix.shape}, expected {expected}"
                )
            if (matrix < 0).any() or (matrix > 1).any():
                raise ConfigurationError("weight matrix entries must lie in [0, 1]")
            if not np.allclose(np.diag(matrix), 1.0):
                raise ConfigurationError("weight matrix diagonal must be 1")
            matrix.setflags(write=False)
            self._weight_cache = matrix
        return self._weight_cache

    def weight(self, e: int, e_prime: int) -> float:
        """``W[e, e']`` — impact on ``e`` from ``e'``."""
        return float(self.weight_matrix()[e, e_prime])

    def as_request_vector(self, requests: RequestsLike) -> np.ndarray:
        """Normalise ``requests`` (vector or link-id list) to a vector."""
        if isinstance(requests, np.ndarray) and requests.dtype != object:
            if requests.shape != (self.num_links,):
                raise SchedulingError(
                    f"request vector has shape {requests.shape}, expected "
                    f"({self.num_links},)"
                )
            return requests.astype(float, copy=False)
        return request_vector(self.num_links, requests)

    def interference_measure(self, requests: RequestsLike) -> float:
        """``I = ||W . R||_inf`` for the given requests.

        The plain infinity norm over *all* rows, exactly as in the
        paper's Section 2 (``I := max_e sum_e' W[e, e'] R(e')``). Taking
        all rows (not just requested links') keeps the measure monotone
        *and sub-additive* in ``R`` — properties both the transformation
        analysis and the window-adversary budget arithmetic rely on.
        """
        vector = self.as_request_vector(requests)
        if vector.sum() == 0:
            return 0.0
        return float((self.weight_matrix() @ vector).max())

    def injection_norm(self, average_rates: RequestsLike) -> float:
        """``||W . F||_inf`` — the paper's injection rate of a mean-usage vector.

        Numerically the same norm as :meth:`interference_measure`; kept
        as a separate entry point because the argument is a *rate*
        (packets per slot in expectation), not a packet count.
        """
        vector = self.as_request_vector(average_rates)
        return float((self.weight_matrix() @ vector).max()) if vector.size else 0.0

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    @abstractmethod
    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        """Which of the simultaneously transmitting links are received.

        ``transmitting`` must not contain duplicates (one transmission
        per link per slot).
        """

    def singleton_succeeds(self, link_id: int) -> bool:
        """Whether a lone transmission on ``link_id`` is received."""
        return link_id in self.successes([link_id])

    def check_all_singletons(self) -> None:
        """Raise if some link cannot even transmit alone.

        Protocols assume every link is individually usable; models built
        from bad geometry (e.g. SINR with too much noise) can violate
        this, and it is better to fail loudly at setup.
        """
        for link in range(self.num_links):
            if not self.singleton_succeeds(link):
                raise ConfigurationError(
                    f"link {link} cannot succeed even transmitting alone"
                )

    def feasible_set(self, transmitting: Sequence[int]) -> bool:
        """Whether *all* the given links succeed simultaneously."""
        attempted = set(transmitting)
        return self.successes(transmitting) == attempted

    def _check_no_duplicates(self, transmitting: Sequence[int]) -> Set[int]:
        attempted = set(transmitting)
        if len(attempted) != len(list(transmitting)):
            raise SchedulingError(
                "duplicate link ids in one slot: a link transmits at most one "
                "packet per time step"
            )
        return attempted


__all__ = ["InterferenceModel", "request_vector", "RequestsLike"]
