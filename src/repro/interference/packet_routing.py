"""Packet-routing networks as an interference model (paper Sections 2 & 7).

Setting ``W`` to the identity matrix recovers classical store-and-forward
packet routing: the interference measure of a request set is its
*congestion* (max packets per link), and simultaneous transmissions on
distinct links never collide. The one-packet-per-link-per-slot rule is
enforced by the schedulers, so every attempted transmission succeeds.

With the trivial single-hop algorithm (one slot per packet per link,
``f(n) = 1``) the paper's transformation yields stable protocols for all
injection rates ``lambda < 1`` — the adversarial-queueing baseline of
Borodin et al. / Andrews et al. recovered inside this framework.
"""

from __future__ import annotations

from typing import Sequence, Set

import numpy as np

from repro.interference.base import BatchSuccessEvaluator, InterferenceModel
from repro.network.network import Network


class _PassThroughBatchEvaluator(BatchSuccessEvaluator):
    """Every attempted transmission succeeds (independent links)."""

    def successes_local(self, transmit_local: np.ndarray) -> np.ndarray:
        return transmit_local.copy()


class PacketRoutingModel(InterferenceModel):
    """Identity ``W``: links are independent, the measure is congestion."""

    def __init__(self, network: Network):
        super().__init__(network)

    def _build_weight_matrix(self) -> np.ndarray:
        return np.eye(self.num_links, dtype=float)

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        return self._check_no_duplicates(transmitting)

    def successes_mask(self, active: np.ndarray) -> np.ndarray:
        return self._as_active_mask(active).copy()

    def batch_evaluator(self, busy: np.ndarray) -> _PassThroughBatchEvaluator:
        return _PassThroughBatchEvaluator(busy)


__all__ = ["PacketRoutingModel"]
