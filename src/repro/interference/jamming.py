"""Adversarial jamming: the paper's other Section-9 direction.

The discussion section points at unreliable communication in the style
of jamming-resistant MAC protocols (Awerbuch–Richa–Scheideler and
follow-ups): an adversary may render slots useless, but is *bounded* —
in any window of ``w`` slots it can jam at most a ``sigma`` fraction.

Following the paper's recipe ("it suffices to consider the effect on
the respective static schedule length"), :class:`JammedModel` wraps any
base interference model with a jamming pattern: in a jammed slot the
targeted links lose their transmissions regardless of interference.
The static schedule stretches by at most ``1/(1 - sigma)`` (only a
``1 - sigma`` fraction of slots is usable), so budgets scaled by
:func:`jamming_budget_factor` restore the high-probability guarantee —
the X3 benchmark validates stability with (and only with) the
adjustment.

Slot convention
---------------
The model cannot see the protocol's clock, so **each call to
``successes()`` advances the jammer by one slot**. That matches how
every scheduler in :mod:`repro.staticsched` runs (one ``successes()``
evaluation per slot) and how :class:`~repro.interference.unreliable.
UnreliableModel` consumes randomness per call. Probing helpers such as
``singleton_succeeds`` also advance the clock; build a fresh model for
experiments after probing, or use :meth:`JammedModel.reset`.

Patterns
--------
* :class:`PeriodicBurstPattern` — jams the first ``burst`` slots of
  every ``period``-slot cycle (the classic reactive-jammer shape).
* :class:`RandomPattern` — jams each slot independently with
  probability ``sigma`` (the stochastic comparison point).
* :class:`FrontLoadedPattern` — spends the entire per-window budget
  ``floor(sigma * window)`` at the start of each window (the worst
  burst a ``(window, sigma)``-bounded jammer can produce).

:func:`worst_window_fraction` audits any pattern empirically, mirroring
the :class:`~repro.injection.adversarial.WindowAudit` for injection.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.interference.base import BatchSuccessEvaluator, InterferenceModel
from repro.utils.rng import RngLike, ensure_rng


class _JammedBatchEvaluator(BatchSuccessEvaluator):
    """Wraps the base evaluator; advances the jammer clock once per slot.

    The target set is pre-resolved to a local mask over the busy links,
    so jammed slots cost one boolean AND instead of a set difference.
    """

    def __init__(self, model: "JammedModel", busy: np.ndarray):
        super().__init__(busy)
        self._model = model
        self._inner = model.base.batch_evaluator(busy)
        if model._targets is None:
            self._reachable_local: Optional[np.ndarray] = None
        else:
            self._reachable_local = np.fromiter(
                (int(e) in model._targets for e in busy),
                dtype=bool,
                count=len(busy),
            )

    def successes_local(self, transmit_local: np.ndarray) -> np.ndarray:
        slot = self._model._slot
        self._model._slot += 1
        winners = self._inner.successes_local(transmit_local)
        if not winners.any() or not self._model.pattern.is_jammed(slot):
            return winners
        if self._reachable_local is None:
            return np.zeros(winners.size, dtype=bool)
        return winners & ~self._reachable_local

    def drop(self, keep_local: np.ndarray) -> None:
        self._inner.drop(keep_local)
        if self._reachable_local is not None:
            self._reachable_local = self._reachable_local[keep_local]
        super().drop(keep_local)


class JammingPattern(ABC):
    """Decides, slot by slot, whether the jammer is active."""

    @abstractmethod
    def is_jammed(self, slot: int) -> bool:
        """Whether slot ``slot`` is jammed."""

    @property
    @abstractmethod
    def jam_fraction(self) -> float:
        """Long-run fraction of jammed slots (``sigma``)."""


class PeriodicBurstPattern(JammingPattern):
    """Jams the first ``burst`` slots of every ``period``-slot cycle."""

    def __init__(self, period: int, burst: int, phase: int = 0):
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if not 0 <= burst <= period:
            raise ConfigurationError(
                f"burst must be in [0, period={period}], got {burst}"
            )
        if phase < 0:
            raise ConfigurationError(f"phase must be non-negative, got {phase}")
        self._period = int(period)
        self._burst = int(burst)
        self._phase = int(phase)

    @property
    def period(self) -> int:
        return self._period

    @property
    def burst(self) -> int:
        return self._burst

    def is_jammed(self, slot: int) -> bool:
        return (slot + self._phase) % self._period < self._burst

    @property
    def jam_fraction(self) -> float:
        return self._burst / self._period


class RandomPattern(JammingPattern):
    """Jams each slot independently with probability ``sigma``.

    Decisions are memoised so repeated queries for one slot agree.
    """

    def __init__(self, sigma: float, rng: RngLike = None):
        if not 0.0 <= sigma < 1.0:
            raise ConfigurationError(f"sigma must be in [0, 1), got {sigma}")
        self._sigma = float(sigma)
        self._rng = ensure_rng(rng)
        self._decided: dict = {}

    def is_jammed(self, slot: int) -> bool:
        if slot not in self._decided:
            self._decided[slot] = bool(self._rng.random() < self._sigma)
        return self._decided[slot]

    @property
    def jam_fraction(self) -> float:
        return self._sigma

    def state_dict(self) -> dict:
        """Mutable state: the coin RNG plus the per-slot decision memo.

        The memo must travel with the RNG — replaying a decided slot
        after resume must neither flip the decision nor burn a coin.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "decided": {
                str(slot): bool(v) for slot, v in self._decided.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.rng import restore_generator_state

        restore_generator_state(self._rng, state["rng"])
        self._decided = {
            int(slot): bool(v) for slot, v in state["decided"].items()
        }


class FrontLoadedPattern(JammingPattern):
    """A ``(window, sigma)``-bounded jammer spending its whole budget upfront.

    In every window ``[k*window, (k+1)*window)`` exactly
    ``floor(sigma * window)`` leading slots are jammed — the burstiest
    schedule the bound admits, and therefore the stress case for
    frame-based protocols.
    """

    def __init__(self, window: int, sigma: float):
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        if not 0.0 <= sigma < 1.0:
            raise ConfigurationError(f"sigma must be in [0, 1), got {sigma}")
        self._window = int(window)
        self._sigma = float(sigma)
        self._budget = int(math.floor(sigma * window))

    @property
    def window(self) -> int:
        return self._window

    @property
    def per_window_budget(self) -> int:
        return self._budget

    def is_jammed(self, slot: int) -> bool:
        return slot % self._window < self._budget

    @property
    def jam_fraction(self) -> float:
        return self._budget / self._window


class JammedModel(InterferenceModel):
    """Base-model successes erased in jammed slots.

    Parameters
    ----------
    base:
        Ground-truth interference model.
    pattern:
        When a slot is jammed, the targeted links' transmissions fail
        no matter how little interference there is.
    targets:
        Link ids the jammer can reach; ``None`` means every link (a
        wide-band jammer). A geometry-limited jammer passes the links
        within its range.
    """

    def __init__(
        self,
        base: InterferenceModel,
        pattern: JammingPattern,
        targets: Optional[Sequence[int]] = None,
    ):
        super().__init__(base.network)
        self._base = base
        self._pattern = pattern
        if targets is None:
            self._targets: Optional[Set[int]] = None
        else:
            target_set = {int(t) for t in targets}
            for link in target_set:
                if not 0 <= link < base.num_links:
                    raise ConfigurationError(
                        f"jammer target {link} is outside 0..{base.num_links - 1}"
                    )
            self._targets = target_set
        self._slot = 0

    @property
    def base(self) -> InterferenceModel:
        """The wrapped model."""
        return self._base

    @property
    def pattern(self) -> JammingPattern:
        return self._pattern

    @property
    def slots_elapsed(self) -> int:
        """How many slots (``successes()`` calls) this model has seen."""
        return self._slot

    def reset(self) -> None:
        """Rewind the jammer clock to slot 0 (e.g. after probing)."""
        self._slot = 0

    def state_dict(self) -> dict:
        """Mutable state: the slot clock, plus pattern/base state if any."""
        state: dict = {"slot": self._slot}
        pattern_state = getattr(self._pattern, "state_dict", None)
        state["pattern"] = (
            pattern_state() if pattern_state is not None else None
        )
        base_state = getattr(self._base, "state_dict", None)
        state["base"] = base_state() if base_state is not None else None
        return state

    def load_state_dict(self, state: dict) -> None:
        from repro.errors import ConfigurationError as _CfgError

        self._slot = int(state["slot"])
        pattern_state = state.get("pattern")
        if pattern_state is not None:
            loader = getattr(self._pattern, "load_state_dict", None)
            if loader is None:
                raise _CfgError(
                    f"checkpoint carries jamming-pattern state but "
                    f"{type(self._pattern).__name__} is stateless"
                )
            loader(pattern_state)
        base_state = state.get("base")
        if base_state is not None:
            loader = getattr(self._base, "load_state_dict", None)
            if loader is None:
                raise _CfgError(
                    f"checkpoint carries base-model state but "
                    f"{type(self._base).__name__} is stateless"
                )
            loader(base_state)

    def _build_weight_matrix(self) -> np.ndarray:
        # Jamming is orthogonal to interference geometry.
        return np.array(self._base.weight_matrix())

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        slot = self._slot
        self._slot += 1
        winners = self._base.successes(transmitting)
        if not winners or not self._pattern.is_jammed(slot):
            return winners
        if self._targets is None:
            return set()
        return {link for link in winners if link not in self._targets}

    def successes_mask(self, active: np.ndarray) -> np.ndarray:
        slot = self._slot
        self._slot += 1
        winners = self._base.successes_mask(active)
        if not winners.any() or not self._pattern.is_jammed(slot):
            return winners
        if self._targets is None:
            return np.zeros(self.num_links, dtype=bool)
        reachable = np.zeros(self.num_links, dtype=bool)
        reachable[np.fromiter(self._targets, dtype=np.int64)] = True
        return winners & ~reachable

    def batch_evaluator(self, busy: np.ndarray) -> _JammedBatchEvaluator:
        return _JammedBatchEvaluator(self, busy)


def jamming_budget_factor(sigma: float, slack: float = 1.5) -> float:
    """Budget multiplier compensating a jam fraction: ``slack / (1 - sigma)``.

    Only a ``1 - sigma`` fraction of slots is usable, so a schedule of
    length ``L`` needs ``~L/(1 - sigma)`` slots; ``slack`` restores the
    high-probability margin against unlucky alignment of bursts with
    the algorithm's random choices.
    """
    if not 0.0 <= sigma < 1.0:
        raise ConfigurationError(f"sigma must be in [0, 1), got {sigma}")
    if slack < 1.0:
        raise ConfigurationError(f"slack must be >= 1, got {slack}")
    return slack / (1.0 - sigma)


def worst_window_fraction(
    pattern: JammingPattern, window: int, horizon: int
) -> float:
    """The largest jammed fraction over any ``window`` consecutive slots.

    Empirical audit of a pattern's burstiness over ``[0, horizon)`` —
    the jamming analogue of the injection ``WindowAudit``. A
    ``(window, sigma)``-bounded jammer must return at most ``sigma``
    (up to the floor on integral budgets).
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    if horizon < window:
        raise ConfigurationError(
            f"horizon ({horizon}) must cover at least one window ({window})"
        )
    flags = np.array(
        [1 if pattern.is_jammed(slot) else 0 for slot in range(horizon)],
        dtype=float,
    )
    sums = np.convolve(flags, np.ones(window), mode="valid")
    return float(sums.max()) / window


__all__ = [
    "JammingPattern",
    "PeriodicBurstPattern",
    "RandomPattern",
    "FrontLoadedPattern",
    "JammedModel",
    "jamming_budget_factor",
    "worst_window_fraction",
]
