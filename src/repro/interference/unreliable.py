"""Unreliable networks: the paper's Section-9 extension.

The paper's discussion names a "trivial extension ... that each
transmission is lost with some probability even if interference is
small enough. It suffices to consider the effect on the respective
static schedule length."

:class:`UnreliableModel` wraps any base interference model and drops
each otherwise-successful transmission independently with probability
``loss_probability``. The measure (``W``) is the base model's — loss is
orthogonal to interference. The effect on static algorithms is exactly
what the paper predicts: a per-attempt success factor ``(1 - p)``,
i.e. budgets scale by ``1/(1 - p)``; :func:`reliability_budget_factor`
computes the sizing adjustment, and the X1 benchmark validates that the
protocol stays stable with (and only with) the adjusted budget.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.interference.base import BatchSuccessEvaluator, InterferenceModel
from repro.utils.rng import RngLike, ensure_rng


class _UnreliableBatchEvaluator(BatchSuccessEvaluator):
    """Wraps the base model's evaluator and thins winners with one draw.

    The loss coins are drawn as a single batch over the interference
    winners in ascending link order — the same stream the scalar path
    consumes one call at a time, so both paths replay identically under
    one seed.
    """

    def __init__(self, model: "UnreliableModel", busy: np.ndarray):
        super().__init__(busy)
        self._inner = model.base.batch_evaluator(busy)
        self._rng = model._rng
        self._loss = model.loss_probability

    def successes_local(self, transmit_local: np.ndarray) -> np.ndarray:
        winners = self._inner.successes_local(transmit_local)
        if self._loss == 0.0 or not winners.any():
            return winners
        idx = np.flatnonzero(winners)
        lost = self._rng.random(idx.size) < self._loss
        out = winners.copy()
        out[idx[lost]] = False
        return out

    def drop(self, keep_local: np.ndarray) -> None:
        self._inner.drop(keep_local)
        super().drop(keep_local)


class UnreliableModel(InterferenceModel):
    """Base-model successes thinned by iid per-transmission loss.

    Parameters
    ----------
    base:
        The underlying interference model (ground truth for collisions).
    loss_probability:
        Probability that an interference-wise successful transmission
        is lost anyway (fading, CRC failure, ...). Applied
        independently per transmission per slot.
    rng:
        Loss randomness; seeded for replayability like everything else.
    """

    def __init__(
        self,
        base: InterferenceModel,
        loss_probability: float,
        rng: RngLike = None,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        super().__init__(base.network)
        self._base = base
        self._loss = float(loss_probability)
        self._rng = ensure_rng(rng)

    @property
    def base(self) -> InterferenceModel:
        """The wrapped model."""
        return self._base

    @property
    def loss_probability(self) -> float:
        return self._loss

    def state_dict(self) -> dict:
        """Mutable state: the loss-coin RNG (plus base-model state)."""
        base_state = getattr(self._base, "state_dict", None)
        return {
            "rng": self._rng.bit_generator.state,
            "base": base_state() if base_state is not None else None,
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.errors import ConfigurationError
        from repro.utils.rng import restore_generator_state

        restore_generator_state(self._rng, state["rng"])
        base_state = state.get("base")
        if base_state is not None:
            loader = getattr(self._base, "load_state_dict", None)
            if loader is None:
                raise ConfigurationError(
                    f"checkpoint carries base-model state but "
                    f"{type(self._base).__name__} is stateless"
                )
            loader(base_state)

    def _build_weight_matrix(self) -> np.ndarray:
        # Interference geometry is unchanged; only delivery is thinned.
        return np.array(self._base.weight_matrix())

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        interference_winners = self._base.successes(transmitting)
        if not interference_winners or self._loss == 0.0:
            return interference_winners
        # Coins are spent in ascending link order so the batched path
        # (one vectorised draw over the sorted winners) consumes the
        # exact same stream.
        survivors = {
            link
            for link in sorted(interference_winners)
            if self._rng.random() >= self._loss
        }
        return survivors

    def successes_mask(self, active: np.ndarray) -> np.ndarray:
        winners = self._base.successes_mask(active)
        if self._loss == 0.0 or not winners.any():
            return winners
        idx = np.flatnonzero(winners)
        lost = self._rng.random(idx.size) < self._loss
        winners = winners.copy()
        winners[idx[lost]] = False
        return winners

    def batch_evaluator(self, busy: np.ndarray) -> _UnreliableBatchEvaluator:
        return _UnreliableBatchEvaluator(self, busy)


def reliability_budget_factor(loss_probability: float, slack: float = 1.5) -> float:
    """Budget multiplier compensating iid loss: ``slack / (1 - p)``.

    Each attempt that would have succeeded now succeeds w.p. ``1 - p``,
    so a schedule of length ``L`` needs ``~L/(1 - p)`` slots to deliver
    the same set whp; ``slack`` restores the high-probability margin
    (the geometric tail of the extra retries).
    """
    if not 0.0 <= loss_probability < 1.0:
        raise ConfigurationError(
            f"loss_probability must be in [0, 1), got {loss_probability}"
        )
    if slack < 1.0:
        raise ConfigurationError(f"slack must be >= 1, got {slack}")
    return slack / (1.0 - loss_probability)


__all__ = ["UnreliableModel", "reliability_budget_factor"]
