"""Interference models defined directly by an explicit matrix.

Two flavours:

* :class:`ExplicitMatrixModel` — the caller supplies both ``W`` and a
  success predicate. Escape hatch for custom models (the Theorem-20
  lower-bound instance uses it).
* :class:`AffectanceThresholdModel` — the caller supplies ``W`` and
  success is the *affectance criterion*: a transmission on ``e`` within
  set ``S`` is received iff the accumulated impact
  ``sum_{e' in S, e' != e} W[e, e']`` stays below a threshold (default 1).
  This is exactly how affectance interacts with SINR feasibility (a link
  meets its SINR constraint iff the affectances of the other active
  links sum to at most 1), so the class doubles as a fast approximate
  SINR model and as the natural semantics for abstract ``W`` benchmarks.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.interference.base import InterferenceModel
from repro.network.network import Network

SuccessPredicate = Callable[[Sequence[int]], Set[int]]


class ExplicitMatrixModel(InterferenceModel):
    """A model given by an explicit ``W`` and an explicit success predicate."""

    def __init__(
        self,
        network: Network,
        weight_matrix: np.ndarray,
        success_predicate: SuccessPredicate,
    ):
        super().__init__(network)
        self._matrix = np.asarray(weight_matrix, dtype=float)
        self._predicate = success_predicate

    def _build_weight_matrix(self) -> np.ndarray:
        return self._matrix

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        attempted = self._check_no_duplicates(transmitting)
        result = set(self._predicate(sorted(attempted)))
        if not result <= attempted:
            raise ConfigurationError(
                "success predicate returned links that were not transmitting"
            )
        return result


class AffectanceThresholdModel(InterferenceModel):
    """Success iff accumulated impact from the other active links <= threshold.

    Parameters
    ----------
    network:
        The underlying network.
    weight_matrix:
        The impact matrix ``W``.
    threshold:
        Maximum tolerable accumulated impact (exclusive bound is *not*
        used: success requires ``impact <= threshold``). The affectance
        normalisation of the SINR literature makes 1.0 the natural
        default.
    """

    def __init__(
        self,
        network: Network,
        weight_matrix: np.ndarray,
        threshold: float = 1.0,
    ):
        super().__init__(network)
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        self._matrix = np.asarray(weight_matrix, dtype=float)
        self._threshold = float(threshold)

    @property
    def threshold(self) -> float:
        """The accumulated-impact success threshold."""
        return self._threshold

    def _build_weight_matrix(self) -> np.ndarray:
        return self._matrix

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        attempted = self._check_no_duplicates(transmitting)
        if not attempted:
            return set()
        ids = np.fromiter(attempted, dtype=int)
        sub = self.weight_matrix()[np.ix_(ids, ids)]
        # Row sums minus the diagonal = impact from the *other* active links.
        impact = sub.sum(axis=1) - np.diag(sub)
        return {int(e) for e, a in zip(ids, impact) if a <= self._threshold}


__all__ = ["ExplicitMatrixModel", "AffectanceThresholdModel"]
