"""Interference models defined directly by an explicit matrix.

Two flavours:

* :class:`ExplicitMatrixModel` — the caller supplies both ``W`` and a
  success predicate. Escape hatch for custom models (the Theorem-20
  lower-bound instance uses it).
* :class:`AffectanceThresholdModel` — the caller supplies ``W`` and
  success is the *affectance criterion*: a transmission on ``e`` within
  set ``S`` is received iff the accumulated impact
  ``sum_{e' in S, e' != e} W[e, e']`` stays below a threshold (default 1).
  This is exactly how affectance interacts with SINR feasibility (a link
  meets its SINR constraint iff the affectances of the other active
  links sum to at most 1), so the class doubles as a fast approximate
  SINR model and as the natural semantics for abstract ``W`` benchmarks.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.interference.base import CachedBatchEvaluator, InterferenceModel
from repro.network.network import Network

SuccessPredicate = Callable[[Sequence[int]], Set[int]]


class _AffectanceBatchEvaluator(CachedBatchEvaluator):
    """Affectance criterion on a cached busy-set submatrix.

    ``W`` is sliced to the run's *initial* busy set once; ``_cols``
    (from the base class) maps surviving links into that frozen cache.
    ``_row_sums`` (total impact on each busy link from all busy links)
    is maintained incrementally — departing links' columns are
    subtracted — giving an O(busy) fast path for slots where every
    busy link transmits.
    """

    def __init__(self, model: "AffectanceThresholdModel", busy: np.ndarray):
        super().__init__(busy)
        self._threshold = model.threshold
        self._sub = model.weight_matrix()[np.ix_(busy, busy)]
        self._row_sums = self._sub.sum(axis=1)
        self._diag = self._sub.diagonal().copy()

    def successes_local(self, transmit_local: np.ndarray) -> np.ndarray:
        if transmit_local.all():
            # Every busy link transmits: impact is the maintained row
            # sum minus the stored diagonal (W's diagonal is validated
            # to ~1 but not exactly 1). O(busy) per slot. The
            # incrementally maintained sums can drift from a fresh
            # evaluation by accumulated ulps (bounded well below 1e-9
            # for W entries in [0, 1] at any feasible busy size), so
            # links landing inside that guard band of the threshold are
            # re-summed exactly in the scalar reduction order — the
            # fast path stays O(busy) in the generic slot and the
            # bit-for-bit parity contract holds even at boundaries.
            impact = self._row_sums - self._diag
            ok = impact <= self._threshold
            borderline = np.abs(impact - self._threshold) < 1e-9
            if borderline.any():
                rows = self._cols[borderline]
                exact = (
                    self._sub[rows[:, None], self._cols].sum(axis=1)
                    - self._diag[borderline]
                )
                ok[borderline] = exact <= self._threshold
            return ok
        cache_idx = self._cols[transmit_local]
        # Open-mesh fancy indexing == np.ix_ without its per-call checks.
        sub = self._sub[cache_idx[:, None], cache_idx]
        impact = sub.sum(axis=1) - sub.diagonal()
        mask = np.zeros(transmit_local.size, dtype=bool)
        mask[transmit_local] = impact <= self._threshold
        return mask

    def drop(self, keep_local: np.ndarray) -> None:
        gone = self._cols[~keep_local]
        kept = self._cols[keep_local]
        self._row_sums = (
            self._row_sums[keep_local]
            - self._sub[kept[:, None], gone].sum(axis=1)
        )
        self._diag = self._diag[keep_local]
        super().drop(keep_local)


class ExplicitMatrixModel(InterferenceModel):
    """A model given by an explicit ``W`` and an explicit success predicate."""

    def __init__(
        self,
        network: Network,
        weight_matrix: np.ndarray,
        success_predicate: SuccessPredicate,
    ):
        super().__init__(network)
        self._matrix = np.asarray(weight_matrix, dtype=float)
        self._predicate = success_predicate

    def _build_weight_matrix(self) -> np.ndarray:
        return self._matrix

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        attempted = self._check_no_duplicates(transmitting)
        result = set(self._predicate(sorted(attempted)))
        if not result <= attempted:
            raise ConfigurationError(
                "success predicate returned links that were not transmitting"
            )
        return result


class AffectanceThresholdModel(InterferenceModel):
    """Success iff accumulated impact from the other active links <= threshold.

    Parameters
    ----------
    network:
        The underlying network.
    weight_matrix:
        The impact matrix ``W``.
    threshold:
        Maximum tolerable accumulated impact (exclusive bound is *not*
        used: success requires ``impact <= threshold``). The affectance
        normalisation of the SINR literature makes 1.0 the natural
        default.
    """

    def __init__(
        self,
        network: Network,
        weight_matrix: np.ndarray,
        threshold: float = 1.0,
    ):
        super().__init__(network)
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        self._matrix = np.asarray(weight_matrix, dtype=float)
        self._threshold = float(threshold)

    @property
    def threshold(self) -> float:
        """The accumulated-impact success threshold."""
        return self._threshold

    def _build_weight_matrix(self) -> np.ndarray:
        return self._matrix

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        attempted = self._check_no_duplicates(transmitting)
        if not attempted:
            return set()
        ids = np.fromiter(attempted, dtype=int)
        sub = self.weight_matrix()[np.ix_(ids, ids)]
        # Row sums minus the diagonal = impact from the *other* active links.
        impact = sub.sum(axis=1) - np.diag(sub)
        return {int(e) for e, a in zip(ids, impact) if a <= self._threshold}

    def successes_mask(self, active: np.ndarray) -> np.ndarray:
        active = self._as_active_mask(active)
        mask = np.zeros(self.num_links, dtype=bool)
        if not active.any():
            return mask
        # Same gather and reduction order as the scalar path, so the
        # two agree bit-for-bit even at the threshold boundary.
        ids = np.flatnonzero(active)
        sub = self.weight_matrix()[np.ix_(ids, ids)]
        impact = sub.sum(axis=1) - np.diag(sub)
        mask[ids] = impact <= self._threshold
        return mask

    def batch_evaluator(self, busy: np.ndarray) -> _AffectanceBatchEvaluator:
        return _AffectanceBatchEvaluator(self, busy)


__all__ = ["ExplicitMatrixModel", "AffectanceThresholdModel"]
