"""Conflict-graph builders for the classic wireless models.

Each builder maps a (geometric) network to a conflict adjacency
``{link_id: set of conflicting link ids}`` consumable by
:class:`~repro.interference.conflict.ConflictGraphModel`. These realise
the models the paper names in Section 7.2:

* **node-constraint model** — a node transmits or receives at most one
  packet per slot: links sharing an endpoint conflict. Bounded
  independence, so constant-competitive protocols exist.
* **protocol model** — a transmission on ``e = (s, r)`` requires every
  other active sender to be outside ``(1 + delta) * d(e)`` of ``r``.
* **radio network model (disk graphs)** — a node receives iff *exactly
  one* of its in-range neighbours transmits: any other sender within
  range of the receiver kills the reception.
* **distance-2 matching (disk graphs)** — scheduled links must form a
  distance-2 matching of the connectivity graph: links conflict when
  any of their endpoints are within the connectivity radius.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.network.network import Network


def node_constraint_conflicts(network: Network) -> Dict[int, Set[int]]:
    """Links conflict iff they share an endpoint (transmit-or-receive-one)."""
    conflicts: Dict[int, Set[int]] = {e: set() for e in range(network.num_links)}
    by_node: Dict[int, Set[int]] = {v: set() for v in range(network.num_nodes)}
    for link in network.links:
        by_node[link.sender].add(link.id)
        by_node[link.receiver].add(link.id)
    for incident in by_node.values():
        for e in incident:
            conflicts[e] |= incident - {e}
    return conflicts


def protocol_model_conflicts(
    network: Network, guard_factor: float = 0.5
) -> Dict[int, Set[int]]:
    """The protocol (interference-range) model.

    ``e'`` conflicts with ``e = (s, r)`` when the sender of ``e'`` lies
    within ``(1 + guard_factor) * d(e)`` of ``r`` — i.e. inside the
    guard zone of ``e``'s receiver. Symmetrised, since the paper's
    conflict graphs are undirected.
    """
    if guard_factor < 0:
        raise ConfigurationError(f"guard_factor must be >= 0, got {guard_factor}")
    _require_geometry(network)
    pairwise = network.metric.pairwise()
    lengths = network.link_lengths()
    conflicts: Dict[int, Set[int]] = {e: set() for e in range(network.num_links)}
    links = network.links
    for e in links:
        guard = (1.0 + guard_factor) * lengths[e.id]
        for e_prime in links:
            if e_prime.id == e.id:
                continue
            if pairwise[e_prime.sender, e.receiver] <= guard:
                conflicts[e.id].add(e_prime.id)
                conflicts[e_prime.id].add(e.id)
    return conflicts


def radio_network_conflicts(
    network: Network, range_radius: float
) -> Dict[int, Set[int]]:
    """The radio-network model on a disk graph of radius ``range_radius``.

    Reception at ``r`` requires that no *other* sender within
    ``range_radius`` of ``r`` transmits (a second in-range transmission
    collides at the receiver).
    """
    if range_radius <= 0:
        raise ConfigurationError(f"range_radius must be positive, got {range_radius}")
    _require_geometry(network)
    pairwise = network.metric.pairwise()
    conflicts: Dict[int, Set[int]] = {e: set() for e in range(network.num_links)}
    links = network.links
    for e in links:
        for e_prime in links:
            if e_prime.id == e.id:
                continue
            if (
                e_prime.sender != e.sender
                and pairwise[e_prime.sender, e.receiver] <= range_radius
            ):
                conflicts[e.id].add(e_prime.id)
                conflicts[e_prime.id].add(e.id)
    return conflicts


def distance2_matching_conflicts(
    network: Network, connectivity_radius: float
) -> Dict[int, Set[int]]:
    """Distance-2 matching in the disk graph of ``connectivity_radius``.

    Two links conflict when any endpoint of one is within the
    connectivity radius of any endpoint of the other (or they share an
    endpoint) — the scheduled set must be a matching even after one hop
    of the connectivity graph.
    """
    if connectivity_radius <= 0:
        raise ConfigurationError(
            f"connectivity_radius must be positive, got {connectivity_radius}"
        )
    _require_geometry(network)
    pairwise = network.metric.pairwise()
    conflicts: Dict[int, Set[int]] = {e: set() for e in range(network.num_links)}
    links = network.links
    for e in links:
        e_nodes = (e.sender, e.receiver)
        for e_prime in links:
            if e_prime.id <= e.id:
                continue
            p_nodes = (e_prime.sender, e_prime.receiver)
            if set(e_nodes) & set(p_nodes) or any(
                pairwise[a, b] <= connectivity_radius
                for a in e_nodes
                for b in p_nodes
            ):
                conflicts[e.id].add(e_prime.id)
                conflicts[e_prime.id].add(e.id)
    return conflicts


def conflict_density(conflicts: Dict[int, Set[int]]) -> float:
    """Average conflict degree — a quick sizing diagnostic for experiments."""
    if not conflicts:
        return 0.0
    return float(np.mean([len(neigh) for neigh in conflicts.values()]))


def _require_geometry(network: Network) -> None:
    if not network.is_geometric:
        raise TopologyError("this conflict builder requires a geometric network")


__all__ = [
    "node_constraint_conflicts",
    "protocol_model_conflicts",
    "radio_network_conflicts",
    "distance2_matching_conflicts",
    "conflict_density",
]
