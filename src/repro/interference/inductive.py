"""Inductive independence (paper Definition 1).

For a conflict graph ``G`` and vertex ordering ``pi``, the inductive
independence number witnessed by ``pi`` is the smallest ``rho`` such that
for every vertex ``v`` and every independent set ``M``,

    | M  intersect  { u : {u, v} in E, pi(u) < pi(v) } |  <=  rho.

Equivalently: the largest independent set inside any vertex's
*earlier-neighbourhood*. This module computes that quantity for a given
ordering (exact via branch-and-bound independent set on each
earlier-neighbourhood — these are small in the graph classes of
interest) and provides the standard orderings:

* ``length_ordering`` — links sorted by geometric length; witnesses
  constant rho for disk-graph-derived conflicts (protocol model,
  distance-2 matching).
* ``degree_ordering`` — smallest-degree-last; a generic heuristic.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.errors import ConfigurationError
from repro.network.network import Network


def _max_independent_set_size(
    vertices: List[int], adjacency: Dict[int, Set[int]], limit: int = 25
) -> int:
    """Exact maximum independent set size by branch and bound.

    ``limit`` caps the subproblem size; beyond it we fall back to a
    greedy 1/(d+1) bound doubled — still an upper-ish estimate, flagged
    by callers that need exactness.
    """
    if len(vertices) > limit:
        return _greedy_independent_set_size(vertices, adjacency)
    return _mis_recursive(set(vertices), adjacency)


def _mis_recursive(vertices: Set[int], adjacency: Dict[int, Set[int]]) -> int:
    if not vertices:
        return 0
    # Pick the max-degree vertex within the subproblem: branch on it.
    v = max(vertices, key=lambda u: len(adjacency[u] & vertices))
    if not (adjacency[v] & vertices):
        # v is isolated here: always include it.
        return 1 + _mis_recursive(vertices - {v}, adjacency)
    without_v = _mis_recursive(vertices - {v}, adjacency)
    with_v = 1 + _mis_recursive(vertices - {v} - adjacency[v], adjacency)
    return max(with_v, without_v)


def _greedy_independent_set_size(
    vertices: List[int], adjacency: Dict[int, Set[int]]
) -> int:
    remaining = set(vertices)
    count = 0
    while remaining:
        v = min(remaining, key=lambda u: len(adjacency[u] & remaining))
        remaining -= adjacency[v] | {v}
        count += 1
    return count


def inductive_independence_for_ordering(
    conflicts: Dict[int, Set[int]],
    ordering: Sequence[int],
    exact_limit: int = 25,
) -> int:
    """The inductive independence number witnessed by ``ordering``.

    ``conflicts`` is a symmetric adjacency mapping over link ids;
    ``ordering[k]`` is the link of rank ``k``. Earlier-neighbourhoods
    larger than ``exact_limit`` vertices are handled greedily (the
    result is then a lower-bound estimate of the witnessed rho).
    """
    ids = sorted(conflicts)
    if sorted(ordering) != ids:
        raise ConfigurationError("ordering must be a permutation of the link ids")
    rank = {link: k for k, link in enumerate(ordering)}
    rho = 0
    for v in ids:
        earlier = [u for u in conflicts[v] if rank[u] < rank[v]]
        if earlier:
            rho = max(rho, _max_independent_set_size(earlier, conflicts, exact_limit))
    return max(rho, 1) if ids else 0


def length_ordering(network: Network) -> List[int]:
    """Links ordered by increasing geometric length (ties by id)."""
    lengths = network.link_lengths()
    return sorted(range(network.num_links), key=lambda e: (lengths[e], e))


def degree_ordering(conflicts: Dict[int, Set[int]]) -> List[int]:
    """Smallest-degree-last ordering (degeneracy ordering).

    Repeatedly remove a minimum-degree vertex; the removal sequence
    *reversed* puts low-degree vertices late, so earlier-neighbourhoods
    stay small. Witnesses rho <= degeneracy.
    """
    remaining: Dict[int, Set[int]] = {v: set(n) for v, n in conflicts.items()}
    removal: List[int] = []
    while remaining:
        v = min(remaining, key=lambda u: (len(remaining[u]), u))
        removal.append(v)
        for u in remaining[v]:
            remaining[u].discard(v)
        del remaining[v]
    removal.reverse()
    return removal


__all__ = [
    "inductive_independence_for_ordering",
    "length_ordering",
    "degree_ordering",
]
