"""Conflict-graph interference models (paper Section 7.2).

The conflict graph has the network's *links* as vertices; an edge
``{e, e'}`` means simultaneous transmissions on ``e`` and ``e'``
collide. Success predicate: a transmission on ``e`` is received iff no
conflicting link transmits in the same slot.

The impact matrix follows the paper's construction from an ordering
``pi`` of the links (Definition 1 territory): ``W[e, e'] = 1`` iff ``e``
and ``e'`` conflict and ``pi(e') <= pi(e)`` (plus the mandatory
diagonal). The induced measure

    I = max_e  sum_{e' conflicting with e, pi(e') <= pi(e)} R(e')

only charges each link for its *earlier* conflicting neighbours; with an
ordering witnessing inductive independence number ``rho``, a feasible set
can carry measure up to ``rho``, which is where the ``O(rho log m)``
competitive ratio of Section 7.2 comes from.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.interference.base import CachedBatchEvaluator, InterferenceModel
from repro.network.network import Network

ConflictMap = Mapping[int, Set[int]]


class _ConflictBatchEvaluator(CachedBatchEvaluator):
    """Conflict check on a cached boolean adjacency submatrix.

    Success is pure boolean algebra (a transmitter wins iff no
    conflicting transmitter), so the batch path is exactly equivalent
    to the scalar set intersection — no floating point involved. The
    adjacency cache is sliced once per run; the base class's
    local->cache index map absorbs drained links without copying it.
    """

    def __init__(self, model: "ConflictGraphModel", busy: np.ndarray):
        super().__init__(busy)
        self._adj = model.adjacency_matrix()[np.ix_(busy, busy)]

    def successes_local(self, transmit_local: np.ndarray) -> np.ndarray:
        cache_idx = self._cols[transmit_local]
        transmit_cache = np.zeros(self._adj.shape[0], dtype=bool)
        transmit_cache[cache_idx] = True
        collision = (self._adj[cache_idx] & transmit_cache).any(axis=1)
        mask = np.zeros(transmit_local.size, dtype=bool)
        mask[transmit_local] = ~collision
        return mask


def _symmetrised(conflicts: ConflictMap, num_links: int) -> Dict[int, Set[int]]:
    """Validate and symmetrise a conflict mapping (no self-conflicts)."""
    table: Dict[int, Set[int]] = {e: set() for e in range(num_links)}
    for e, neighbours in conflicts.items():
        if not 0 <= e < num_links:
            raise ConfigurationError(f"conflict map references unknown link {e}")
        for e_prime in neighbours:
            if not 0 <= e_prime < num_links:
                raise ConfigurationError(
                    f"conflict map references unknown link {e_prime}"
                )
            if e_prime == e:
                continue
            table[e].add(e_prime)
            table[e_prime].add(e)
    return table


class ConflictGraphModel(InterferenceModel):
    """Binary conflicts between links, with an ordering-based ``W``.

    Parameters
    ----------
    network:
        The underlying network.
    conflicts:
        Mapping from link id to the set of link ids it conflicts with.
        Symmetrised automatically.
    ordering:
        Optional permutation ``pi`` as a sequence where ``ordering[k]``
        is the link with rank ``k``. Defaults to id order. Choose an
        ordering witnessing small inductive independence (see
        :mod:`repro.interference.inductive`) to get the tight measure.
    """

    def __init__(
        self,
        network: Network,
        conflicts: ConflictMap,
        ordering: Optional[Sequence[int]] = None,
    ):
        super().__init__(network)
        self._conflicts = _symmetrised(conflicts, network.num_links)
        if ordering is None:
            ordering = list(range(network.num_links))
        if sorted(ordering) != list(range(network.num_links)):
            raise ConfigurationError(
                "ordering must be a permutation of all link ids"
            )
        self._rank = {link: rank for rank, link in enumerate(ordering)}
        self._adjacency_cache: Optional[np.ndarray] = None

    @property
    def conflicts(self) -> Dict[int, Set[int]]:
        """The symmetrised conflict adjacency (copy)."""
        return {e: set(neigh) for e, neigh in self._conflicts.items()}

    def rank(self, link_id: int) -> int:
        """The ordering rank ``pi(link_id)``."""
        return self._rank[link_id]

    def conflict_degree(self, link_id: int) -> int:
        """Number of links conflicting with ``link_id``."""
        return len(self._conflicts[link_id])

    def _build_weight_matrix(self) -> np.ndarray:
        n = self.num_links
        matrix = np.zeros((n, n), dtype=float)
        for e in range(n):
            matrix[e, e] = 1.0
            for e_prime in self._conflicts[e]:
                if self._rank[e_prime] <= self._rank[e]:
                    matrix[e, e_prime] = 1.0
        return matrix

    def adjacency_matrix(self) -> np.ndarray:
        """The symmetric boolean conflict adjacency (cached, read-only)."""
        if self._adjacency_cache is None:
            n = self.num_links
            adjacency = np.zeros((n, n), dtype=bool)
            for e, neighbours in self._conflicts.items():
                for e_prime in neighbours:
                    adjacency[e, e_prime] = True
            adjacency.setflags(write=False)
            self._adjacency_cache = adjacency
        return self._adjacency_cache

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        attempted = self._check_no_duplicates(transmitting)
        return {
            e for e in attempted if not (self._conflicts[e] & attempted)
        }

    def successes_mask(self, active: np.ndarray) -> np.ndarray:
        active = self._as_active_mask(active)
        mask = np.zeros(self.num_links, dtype=bool)
        if not active.any():
            return mask
        idx = np.flatnonzero(active)
        collision = (self.adjacency_matrix()[idx] & active).any(axis=1)
        mask[idx] = ~collision
        return mask

    def batch_evaluator(self, busy: np.ndarray) -> _ConflictBatchEvaluator:
        return _ConflictBatchEvaluator(self, busy)

    def is_independent(self, links: Iterable[int]) -> bool:
        """Whether the given links form an independent (conflict-free) set."""
        links = set(links)
        return all(not (self._conflicts[e] & links - {e}) for e in links)


__all__ = ["ConflictGraphModel", "ConflictMap"]
