"""The multiple-access channel (paper Section 7.1).

All links share one channel: a transmission is received iff it is the
only one in its slot. The impact matrix is all-ones, so the interference
measure of a request set is simply its total number of packets — the
paper's observation that MAC is the ``W = 1`` special case of the linear
measure.
"""

from __future__ import annotations

from typing import Sequence, Set

import numpy as np

from repro.interference.base import InterferenceModel
from repro.network.network import Network


class MultipleAccessChannel(InterferenceModel):
    """Single shared channel: success iff exactly one link transmits."""

    def __init__(self, network: Network):
        super().__init__(network)

    def _build_weight_matrix(self) -> np.ndarray:
        return np.ones((self.num_links, self.num_links), dtype=float)

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        attempted = self._check_no_duplicates(transmitting)
        if len(attempted) == 1:
            return set(attempted)
        return set()


__all__ = ["MultipleAccessChannel"]
