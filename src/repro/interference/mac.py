"""The multiple-access channel (paper Section 7.1).

All links share one channel: a transmission is received iff it is the
only one in its slot. The impact matrix is all-ones, so the interference
measure of a request set is simply its total number of packets — the
paper's observation that MAC is the ``W = 1`` special case of the linear
measure.
"""

from __future__ import annotations

from typing import Sequence, Set

import numpy as np

from repro.interference.base import BatchSuccessEvaluator, InterferenceModel
from repro.network.network import Network


class _MacBatchEvaluator(BatchSuccessEvaluator):
    """Singleton test on the local mask; nothing to cache or shrink."""

    def successes_local(self, transmit_local: np.ndarray) -> np.ndarray:
        if np.count_nonzero(transmit_local) == 1:
            return transmit_local.copy()
        return np.zeros(transmit_local.size, dtype=bool)


class MultipleAccessChannel(InterferenceModel):
    """Single shared channel: success iff exactly one link transmits."""

    def __init__(self, network: Network):
        super().__init__(network)

    def _build_weight_matrix(self) -> np.ndarray:
        return np.ones((self.num_links, self.num_links), dtype=float)

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        attempted = self._check_no_duplicates(transmitting)
        if len(attempted) == 1:
            return set(attempted)
        return set()

    def successes_mask(self, active: np.ndarray) -> np.ndarray:
        active = self._as_active_mask(active)
        if np.count_nonzero(active) == 1:
            return active.copy()
        return np.zeros(self.num_links, dtype=bool)

    def batch_evaluator(self, busy: np.ndarray) -> _MacBatchEvaluator:
        return _MacBatchEvaluator(busy)


__all__ = ["MultipleAccessChannel"]
