"""Interference models: the linear measure ``I = ||W . R||_inf`` and
per-model success predicates.

The paper abstracts every interference assumption into a matrix
``W in [0,1]^{E x E}`` (Section 2): ``W[e, e']`` is the relative impact a
transmission on ``e'`` has on one on ``e``, with ``W[e, e] = 1``. All
algorithms and injection bounds are phrased in terms of the induced
measure ``I = max_e sum_e' W[e, e'] R(e')``.

Ground truth for *which transmissions actually succeed* is a separate,
model-specific predicate (:meth:`InterferenceModel.successes`): exact
SINR feasibility for the SINR models, "alone on the channel" for the
multiple-access channel, "no conflicting neighbour" for conflict graphs,
and so on. Keeping measure and predicate separate mirrors the paper,
where ``W`` is chosen *so that* the measure tracks the predicate.
"""

from repro.interference.base import InterferenceModel, request_vector
from repro.interference.matrix_model import AffectanceThresholdModel, ExplicitMatrixModel
from repro.interference.mac import MultipleAccessChannel
from repro.interference.packet_routing import PacketRoutingModel
from repro.interference.conflict import ConflictGraphModel
from repro.interference.inductive import (
    inductive_independence_for_ordering,
    length_ordering,
    degree_ordering,
)
from repro.interference.builders import (
    distance2_matching_conflicts,
    node_constraint_conflicts,
    protocol_model_conflicts,
    radio_network_conflicts,
)
from repro.interference.unreliable import (
    UnreliableModel,
    reliability_budget_factor,
)
from repro.interference.jamming import (
    FrontLoadedPattern,
    JammedModel,
    JammingPattern,
    PeriodicBurstPattern,
    RandomPattern,
    jamming_budget_factor,
    worst_window_fraction,
)

__all__ = [
    "InterferenceModel",
    "request_vector",
    "ExplicitMatrixModel",
    "AffectanceThresholdModel",
    "MultipleAccessChannel",
    "PacketRoutingModel",
    "ConflictGraphModel",
    "inductive_independence_for_ordering",
    "length_ordering",
    "degree_ordering",
    "node_constraint_conflicts",
    "protocol_model_conflicts",
    "radio_network_conflicts",
    "distance2_matching_conflicts",
    "UnreliableModel",
    "reliability_budget_factor",
    "JammingPattern",
    "PeriodicBurstPattern",
    "RandomPattern",
    "FrontLoadedPattern",
    "JammedModel",
    "jamming_budget_factor",
    "worst_window_fraction",
]
