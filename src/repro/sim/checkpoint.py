"""Versioned on-disk checkpoints for frame simulations.

The protocol runs every frame to completion, so the frame boundary is
the natural snapshot point: between frames every layer (protocol,
packet store, injection process, stateful models, metrics) is
quiescent, and a restored snapshot continues bit-identically to an
uninterrupted run on every backend — the numba/kernel backends re-enter
Python at exactly these boundaries.

File layout (all little-endian)::

    magic    8 bytes   b"RPROCKPT"
    version  4 bytes   uint32 format version (currently 1)
    digest  32 bytes   sha256 of everything after this field
    body
      header_len  8 bytes  uint64, length of the JSON header
      header      JSON: {"version", "fingerprint", "state"} where every
                  numpy array in the state tree is replaced by an
                  {"__array__": key, "dtype", "shape"} placeholder; an
                  optional "stored_dtype" marks an int64 array written
                  narrowed to int32 (values checked to fit) and widened
                  back on load
      arrays      an .npz archive (numpy's own format, allow_pickle
                  off) holding the placeholder keys

Writes are atomic (tmp file + fsync + ``os.replace``), so a crash
mid-write leaves either the previous checkpoint or none — never a torn
file that parses. Loads validate magic, version, digest, JSON shape and
per-array dtype/shape and raise
:class:`~repro.errors.ConfigurationError` (never a numpy traceback) on
anything incompatible or truncated.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

MAGIC = b"RPROCKPT"
FORMAT_VERSION = 1

#: Frames between automatic snapshots in :func:`run_with_checkpoints`.
#: Sized so steady-state overhead stays a few percent on the headline
#: workload (a snapshot costs ~1-2 frames of compute there, see
#: ``BENCH_p6.json``); a crash re-computes at most this many frames.
#: Slow workloads (minutes per frame) should pass a smaller interval.
DEFAULT_SNAPSHOT_INTERVAL = 50


# ----------------------------------------------------------------------
# Array/JSON splitting
# ----------------------------------------------------------------------


_INT32_MIN = np.iinfo(np.int32).min
_INT32_MAX = np.iinfo(np.int32).max


def _narrow(value: np.ndarray) -> Optional[np.ndarray]:
    """An int32 copy of an int64 array whose values fit, else ``None``.

    Checkpoint payloads are dominated by int64 id/frame arrays whose
    values are far below 2**31; storing them as int32 halves the bytes
    hashed and written per snapshot. The original dtype is recorded in
    the placeholder and restored exactly on load.
    """
    if value.dtype != np.int64 or value.size == 0:
        return None
    if value.min() < _INT32_MIN or value.max() > _INT32_MAX:
        return None
    return value.astype(np.int32)


def _split_arrays(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Replace ndarray leaves with placeholders, collecting the arrays."""
    if isinstance(value, np.ndarray):
        key = f"a{len(arrays)}"
        placeholder = {
            "__array__": key,
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
        narrowed = _narrow(value)
        if narrowed is not None:
            arrays[key] = narrowed
            placeholder["stored_dtype"] = str(narrowed.dtype)
        else:
            arrays[key] = value
        return placeholder
    if isinstance(value, dict):
        return {str(k): _split_arrays(v, arrays) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_split_arrays(v, arrays) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def _join_arrays(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`_split_arrays`, validating dtype and shape."""
    if isinstance(value, dict):
        if "__array__" in value:
            key = value["__array__"]
            if key not in arrays:
                raise ConfigurationError(
                    f"checkpoint is missing array payload '{key}'"
                )
            arr = arrays[key]
            expected_dtype = np.dtype(value.get("dtype", arr.dtype))
            expected_shape = tuple(value.get("shape", arr.shape))
            stored = value.get("stored_dtype")
            payload_dtype = (
                np.dtype(stored) if stored is not None else expected_dtype
            )
            if arr.dtype != payload_dtype or arr.shape != expected_shape:
                raise ConfigurationError(
                    f"checkpoint array '{key}' should be {payload_dtype}"
                    f"{expected_shape} but the payload holds {arr.dtype}"
                    f"{arr.shape}"
                )
            if arr.dtype != expected_dtype:
                arr = arr.astype(expected_dtype)
            return arr
        return {k: _join_arrays(v, arrays) for k, v in value.items()}
    if isinstance(value, list):
        return [_join_arrays(v, arrays) for v in value]
    return value


# ----------------------------------------------------------------------
# File format
# ----------------------------------------------------------------------


def write_checkpoint(
    path: str,
    state: Dict[str, Any],
    fingerprint: Optional[str] = None,
    durable: bool = True,
) -> None:
    """Atomically write ``state`` (a ``state_dict`` tree) to ``path``.

    ``durable=False`` skips the fsync: ``os.replace`` still guarantees a
    crash of the *process* leaves either the previous checkpoint or the
    complete new one, but a power loss may tear the file. The checksum
    catches a torn file on load and the caller falls back to a fresh
    run, so periodic mid-run snapshots use this cheaper mode; the final
    snapshot of a run is always written durably.
    """
    arrays: Dict[str, np.ndarray] = {}
    plain = _split_arrays(state, arrays)
    header = json.dumps(
        {
            "version": FORMAT_VERSION,
            "fingerprint": fingerprint,
            "state": plain,
        },
        sort_keys=True,
    ).encode("utf-8")
    payload = io.BytesIO()
    np.savez(payload, **arrays)
    header_len = struct.pack("<Q", len(header))
    # Hash and write the body piecewise — concatenating ``bytes`` here
    # would copy the (potentially large) array payload twice per save.
    digest = hashlib.sha256()
    digest.update(header_len)
    digest.update(header)
    digest.update(payload.getbuffer())
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<I", FORMAT_VERSION))
        handle.write(digest.digest())
        handle.write(header_len)
        handle.write(header)
        handle.write(payload.getbuffer())
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_checkpoint(
    path: str, expect_fingerprint: Optional[str] = None
) -> Tuple[Dict[str, Any], Optional[str]]:
    """Read and validate a checkpoint; returns ``(state, fingerprint)``.

    Every failure mode — missing file, foreign format, truncation,
    bit-rot, version skew, fingerprint mismatch — raises
    :class:`ConfigurationError` with a message naming the problem.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise ConfigurationError(f"cannot read checkpoint {path}: {exc}") from exc
    prefix = len(MAGIC) + 4 + 32
    if len(blob) < prefix or not blob.startswith(MAGIC):
        raise ConfigurationError(f"{path} is not a repro checkpoint")
    (version,) = struct.unpack_from("<I", blob, len(MAGIC))
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"{path} uses checkpoint format version {version}; this build "
            f"reads version {FORMAT_VERSION}"
        )
    digest = blob[len(MAGIC) + 4 : prefix]
    body = blob[prefix:]
    if hashlib.sha256(body).digest() != digest:
        raise ConfigurationError(
            f"{path} is corrupt or truncated (checksum mismatch)"
        )
    if len(body) < 8:
        raise ConfigurationError(f"{path} is corrupt (empty body)")
    (header_len,) = struct.unpack_from("<Q", body, 0)
    if 8 + header_len > len(body):
        raise ConfigurationError(f"{path} is corrupt (truncated header)")
    try:
        header = json.loads(body[8 : 8 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"{path} has an unreadable header: {exc}"
        ) from exc
    if not isinstance(header, dict) or "state" not in header:
        raise ConfigurationError(f"{path} has a malformed header")
    fingerprint = header.get("fingerprint")
    if (
        expect_fingerprint is not None
        and fingerprint is not None
        and fingerprint != expect_fingerprint
    ):
        raise ConfigurationError(
            f"{path} was written for a different run configuration "
            f"(fingerprint {fingerprint[:12]}... != "
            f"{expect_fingerprint[:12]}...)"
        )
    try:
        with np.load(
            io.BytesIO(body[8 + header_len :]), allow_pickle=False
        ) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except Exception as exc:  # numpy raises several zipfile/ValueError types
        raise ConfigurationError(
            f"{path} has an unreadable array payload: {exc}"
        ) from exc
    return _join_arrays(header["state"], arrays), fingerprint


# ----------------------------------------------------------------------
# Simulation-level helpers
# ----------------------------------------------------------------------


def save_checkpoint(
    path: str, sim, fingerprint: Optional[str] = None, durable: bool = True
) -> None:
    """Snapshot ``sim`` (a :class:`FrameSimulation`) to ``path``."""
    # copy=False: the snapshot is serialized immediately, so the array
    # leaves may alias the live simulation without a defensive copy.
    write_checkpoint(
        path,
        sim.state_dict(copy=False),
        fingerprint=fingerprint,
        durable=durable,
    )


def load_checkpoint_into(
    sim, path: str, fingerprint: Optional[str] = None
) -> int:
    """Restore ``path`` onto a freshly built ``sim``; returns frames run."""
    state, _ = read_checkpoint(path, expect_fingerprint=fingerprint)
    sim.load_state_dict(state)
    return sim.frames_run


def run_with_checkpoints(
    sim,
    frames: int,
    path: str,
    interval: Optional[int] = None,
    fingerprint: Optional[str] = None,
):
    """Run ``sim`` up to ``frames`` total, snapshotting along the way.

    Continues from wherever ``sim`` currently is (0 for a fresh build,
    the restored frame after :func:`load_checkpoint_into`), writing a
    checkpoint every ``interval`` frames and once at the end. Returns
    the metrics recorder.
    """
    if interval is None:
        interval = DEFAULT_SNAPSHOT_INTERVAL
    if interval < 1:
        raise ConfigurationError(
            f"snapshot interval must be >= 1, got {interval}"
        )
    if sim.frames_run > frames:
        raise ConfigurationError(
            f"simulation has already run {sim.frames_run} frames, past the "
            f"requested horizon of {frames}"
        )
    while sim.frames_run < frames:
        chunk = min(interval, frames - sim.frames_run)
        sim.run(chunk)
        # Mid-run snapshots skip the fsync (process-crash safe via
        # os.replace; a torn power-loss write is caught by the checksum
        # and recovered from); only the final snapshot pays for full
        # durability.
        save_checkpoint(
            path,
            sim,
            fingerprint=fingerprint,
            durable=sim.frames_run >= frames,
        )
    return sim.metrics


__all__ = [
    "DEFAULT_SNAPSHOT_INTERVAL",
    "FORMAT_VERSION",
    "MAGIC",
    "read_checkpoint",
    "write_checkpoint",
    "save_checkpoint",
    "load_checkpoint_into",
    "run_with_checkpoints",
]
