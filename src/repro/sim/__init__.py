"""Simulation driver, metrics, and stability detection.

:class:`~repro.sim.engine.FrameSimulation` couples an injection process
with any frame-protocol object (duck-typed: ``run_frame``,
``frame_length``, ``packets_in_system``, ``delivered``) and records a
:class:`~repro.sim.metrics.MetricsRecorder` time series. The
:mod:`repro.sim.stability` detector turns a queue series into a
stable/unstable verdict; :mod:`repro.sim.runner` sweeps rates and seeds
for the benchmarks. :mod:`repro.sim.trace` records per-packet event
streams when a :class:`~repro.sim.trace.Tracer` is attached to a
protocol.
"""

from repro.sim.engine import FrameSimulation
from repro.sim.metrics import LatencySummary, MetricsRecorder
from repro.sim.stability import StabilityVerdict, assess_stability
from repro.sim.runner import RateSweepRecord, run_rate_sweep, simulate_protocol
from repro.sim.trace import (
    EventKind,
    TraceEvent,
    Tracer,
    format_journey,
    packet_journey,
)

__all__ = [
    "FrameSimulation",
    "MetricsRecorder",
    "LatencySummary",
    "StabilityVerdict",
    "assess_stability",
    "run_rate_sweep",
    "RateSweepRecord",
    "simulate_protocol",
    "EventKind",
    "TraceEvent",
    "Tracer",
    "packet_journey",
    "format_journey",
]
