"""Simulation driver, metrics, stability detection, and sweep sharding.

:class:`~repro.sim.engine.FrameSimulation` couples an injection process
with any frame-protocol object (duck-typed: ``run_frame``,
``frame_length``, ``packets_in_system``, ``delivered``) and records a
:class:`~repro.sim.metrics.MetricsRecorder` time series. The
:mod:`repro.sim.stability` detector turns a queue series into a
stable/unstable verdict; :mod:`repro.sim.runner` sweeps rates and seeds
for the benchmarks, staged as spec generation / cell execution /
aggregation so :mod:`repro.sim.sharding` can map the same cells over
process pools (record-for-record identical to the serial path).
:mod:`repro.sim.trace` records per-packet event streams when a
:class:`~repro.sim.trace.Tracer` is attached to a protocol.
"""

from repro.sim.engine import FrameSimulation
from repro.sim.metrics import LatencySummary, MetricsRecorder
from repro.sim.stability import (
    StabilityVerdict,
    assess_stability,
    assess_stability_streaming,
    assess_stability_windowed,
)
from repro.sim.streaming import (
    QuantileSketch,
    RingBuffer,
    StreamingLatency,
    StreamingMoments,
    StreamingSeries,
)
from repro.sim.runner import (
    CellResult,
    FactoryCell,
    RateSweepRecord,
    aggregate_rate_sweep,
    build_factory_cells,
    measure_cell,
    run_rate_sweep,
    simulate_protocol,
)
from repro.sim.sharding import (
    CellSpec,
    ProcessExecutor,
    SerialExecutor,
    default_worker_count,
    executor_names,
    make_executor,
    register_injection_builder,
    register_pair_builder,
    register_protocol_builder,
    run_cell,
    run_sharded_sweep,
    sweep_specs,
)
from repro.sim.trace import (
    EventKind,
    TraceEvent,
    Tracer,
    format_journey,
    packet_journey,
)

__all__ = [
    "FrameSimulation",
    "MetricsRecorder",
    "LatencySummary",
    "StabilityVerdict",
    "assess_stability",
    "assess_stability_streaming",
    "assess_stability_windowed",
    "QuantileSketch",
    "RingBuffer",
    "StreamingLatency",
    "StreamingMoments",
    "StreamingSeries",
    "run_rate_sweep",
    "RateSweepRecord",
    "simulate_protocol",
    "CellResult",
    "FactoryCell",
    "aggregate_rate_sweep",
    "build_factory_cells",
    "measure_cell",
    "CellSpec",
    "ProcessExecutor",
    "SerialExecutor",
    "default_worker_count",
    "executor_names",
    "make_executor",
    "register_injection_builder",
    "register_pair_builder",
    "register_protocol_builder",
    "run_cell",
    "run_sharded_sweep",
    "sweep_specs",
    "EventKind",
    "TraceEvent",
    "Tracer",
    "packet_journey",
    "format_journey",
]
