"""Finite-horizon stability detection.

The paper's stability notion (bounded expected queues over an infinite
horizon) is approximated by two complementary finite-horizon signals on
the in-system queue series:

1. **Drift**: the least-squares slope over the trailing portion of the
   series, normalised by the injected load per frame. A stable queue
   hovers (slope ~ 0); an unstable one grows linearly with the excess
   rate.
2. **Blow-up**: the ratio of the tail mean to the early mean. Stable
   runs plateau; unstable runs keep climbing, making the ratio grow
   with the horizon.

The thresholds are deliberately loose — the sweeps place rates well on
either side of the boundary, and the detector is calibrated in the test
suite on known-stable and known-unstable workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, StabilityError


def _check_tail_fraction(tail_fraction: float) -> None:
    """Reject out-of-range tail fractions before they slice.

    ``tail_fraction`` outside ``(0, 1]`` used to produce an empty (or
    wrong) tail slice whose ``mean()`` emitted a RuntimeWarning and
    returned NaN — and every NaN comparison in the verdict is False, so
    the run was *silently classified unstable*. Same contract (and
    wording) as :meth:`repro.sim.metrics.MetricsRecorder.mean_queue`.
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ConfigurationError(
            f"tail_fraction must be in (0, 1], got {tail_fraction}"
        )


def _check_head_frames(head_frames: int) -> None:
    if head_frames < 1:
        raise ConfigurationError(
            f"head_frames must be >= 1, got {head_frames}"
        )


@dataclass(frozen=True)
class StabilityVerdict:
    """Outcome of a stability assessment."""

    stable: bool
    slope_per_frame: float
    normalised_slope: float
    blowup_ratio: float
    tail_mean: float

    def __bool__(self) -> bool:
        return self.stable


def _linear_slope(series: np.ndarray) -> float:
    """Least-squares slope of ``series`` against the frame index."""
    x = np.arange(len(series), dtype=float)
    x -= x.mean()
    y = series - series.mean()
    denominator = float((x**2).sum())
    if denominator == 0:
        return 0.0
    return float((x * y).sum() / denominator)


def assess_stability(
    queue_series: Sequence[float],
    load_per_frame: float = 1.0,
    tail_fraction: float = 0.6,
    slope_tolerance: float = 0.02,
    blowup_tolerance: float = 3.0,
    min_frames: int = 20,
) -> StabilityVerdict:
    """Classify a queue series as stable or unstable.

    Parameters
    ----------
    queue_series:
        In-system packet counts, one per frame.
    load_per_frame:
        Expected injected packets per frame, used to normalise the
        slope (an unstable queue grows by a constant *fraction* of the
        load per frame).
    tail_fraction:
        The trailing fraction of the series used for the drift fit.
    slope_tolerance:
        Verdict is unstable when the normalised slope exceeds this.
    blowup_tolerance:
        ... or when tail mean exceeds this multiple of the early mean
        (with an additive floor so tiny queues don't trip it).
    """
    _check_tail_fraction(tail_fraction)
    # No list() round-trip: an ndarray input is used as-is (float64
    # arrays pass through without a copy).
    series = np.asarray(queue_series, dtype=float)
    if len(series) < min_frames:
        raise StabilityError(
            f"need at least {min_frames} frames to assess stability, got "
            f"{len(series)}"
        )
    tail_start = int(len(series) * (1.0 - tail_fraction))
    tail = series[tail_start:]
    head = series[: max(2, len(series) // 4)]
    head_mean = float(head.mean())
    return _verdict_from_windows(
        tail, head_mean, load_per_frame, slope_tolerance, blowup_tolerance
    )


def _verdict_from_windows(
    tail: np.ndarray,
    head_mean: float,
    load_per_frame: float,
    slope_tolerance: float,
    blowup_tolerance: float,
) -> StabilityVerdict:
    """The drift/blow-up math shared by the batch and windowed paths."""
    if len(tail) < 2:
        # A one-point least-squares fit has slope 0.0 by construction,
        # so the drift check would pass vacuously — exactly the kind of
        # near-boundary probe a frontier bisection must not trust.
        raise StabilityError(
            f"need at least 2 tail frames for the drift fit, got "
            f"{len(tail)}; lengthen the horizon or raise tail_fraction"
        )
    slope = _linear_slope(tail)
    load = max(load_per_frame, 1e-9)
    normalised = slope / load
    tail_mean = float(tail.mean())
    floor = 5.0 * load + 10.0
    blowup = (tail_mean + 1.0) / (max(head_mean, floor) + 1.0)
    stable = normalised <= slope_tolerance and blowup <= blowup_tolerance
    return StabilityVerdict(
        stable=stable,
        slope_per_frame=slope,
        normalised_slope=normalised,
        blowup_ratio=blowup,
        tail_mean=tail_mean,
    )


def assess_stability_windowed(
    queue_series: Sequence[float],
    window: int,
    head_frames: int,
    load_per_frame: float = 1.0,
    tail_fraction: float = 0.6,
    slope_tolerance: float = 0.02,
    blowup_tolerance: float = 3.0,
    min_frames: int = 20,
) -> StabilityVerdict:
    """The bounded-memory detector's semantics, on a full series.

    This is the batch recompute of :func:`assess_stability_streaming`:
    given the *whole* queue history it produces bit-identically the
    verdict a streaming run with the same ``window`` / ``head_frames``
    produces from O(window) state. For ``len(series) <= window`` it
    delegates to :func:`assess_stability` (the streaming path holds the
    entire series in its ring there); beyond that, the drift fit and
    tail mean use the newest ``min(window, n - int(n * (1 -
    tail_fraction)))`` frames and the blow-up baseline is the mean of
    the first ``head_frames`` frames.
    """
    _check_tail_fraction(tail_fraction)
    _check_head_frames(head_frames)
    series = np.asarray(queue_series, dtype=float)
    n = len(series)
    if n < min_frames:
        # Checked before the <= window delegation: with ``window <
        # min_frames <= n`` the batch recompute used to skip the check
        # and return a verdict the streaming assessor refuses for the
        # same series — breaking the documented bit-parity contract.
        raise StabilityError(
            f"need at least {min_frames} frames to assess stability, "
            f"got {n}"
        )
    if n <= window:
        return assess_stability(
            series,
            load_per_frame=load_per_frame,
            tail_fraction=tail_fraction,
            slope_tolerance=slope_tolerance,
            blowup_tolerance=blowup_tolerance,
            min_frames=min_frames,
        )
    tail_target = n - int(n * (1.0 - tail_fraction))
    # max(2, ...): a length-1 tail would pass the drift check on a
    # vacuous fit (see _verdict_from_windows, which also guards).
    tail = series[n - max(2, min(window, tail_target)) :]
    head_mean = float(series[:head_frames].mean())
    return _verdict_from_windows(
        tail, head_mean, load_per_frame, slope_tolerance, blowup_tolerance
    )


def assess_stability_streaming(
    queue,
    load_per_frame: float = 1.0,
    tail_fraction: float = 0.6,
    slope_tolerance: float = 0.02,
    blowup_tolerance: float = 3.0,
    min_frames: int = 20,
) -> StabilityVerdict:
    """Classify a queue tracked as a
    :class:`~repro.sim.streaming.StreamingSeries`, in O(window) space.

    While the run still fits the ring (``count <= window``) the verdict
    is *exactly* :func:`assess_stability` on the full series; beyond
    that it is the windowed detector of
    :func:`assess_stability_windowed` — drift over the newest frames,
    blow-up against the exact mean of the first ``head_frames`` frames
    (kept by the series' head accumulator). Either way the verdict is a
    pure function of the series, so a batch recompute from full history
    reproduces it bit for bit.
    """
    _check_tail_fraction(tail_fraction)
    n = queue.count
    if n < min_frames:
        raise StabilityError(
            f"need at least {min_frames} frames to assess stability, got {n}"
        )
    values = queue.values().astype(float)
    if n <= queue.window:
        return assess_stability(
            values,
            load_per_frame=load_per_frame,
            tail_fraction=tail_fraction,
            slope_tolerance=slope_tolerance,
            blowup_tolerance=blowup_tolerance,
            min_frames=min_frames,
        )
    tail_target = n - int(n * (1.0 - tail_fraction))
    # max(2, ...): mirrors the windowed batch recompute bit for bit
    # (the ring always holds >= window >= 8 frames here).
    tail = values[len(values) - max(2, min(queue.window, tail_target)) :]
    # The head accumulator's sum is exact (integer series), so this
    # mean equals the batch np.mean over the same prefix bit for bit.
    head_mean = queue.head.mean
    return _verdict_from_windows(
        tail, head_mean, load_per_frame, slope_tolerance, blowup_tolerance
    )


__all__ = [
    "assess_stability",
    "assess_stability_streaming",
    "assess_stability_windowed",
    "StabilityVerdict",
]
