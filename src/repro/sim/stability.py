"""Finite-horizon stability detection.

The paper's stability notion (bounded expected queues over an infinite
horizon) is approximated by two complementary finite-horizon signals on
the in-system queue series:

1. **Drift**: the least-squares slope over the trailing portion of the
   series, normalised by the injected load per frame. A stable queue
   hovers (slope ~ 0); an unstable one grows linearly with the excess
   rate.
2. **Blow-up**: the ratio of the tail mean to the early mean. Stable
   runs plateau; unstable runs keep climbing, making the ratio grow
   with the horizon.

The thresholds are deliberately loose — the sweeps place rates well on
either side of the boundary, and the detector is calibrated in the test
suite on known-stable and known-unstable workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import StabilityError


@dataclass(frozen=True)
class StabilityVerdict:
    """Outcome of a stability assessment."""

    stable: bool
    slope_per_frame: float
    normalised_slope: float
    blowup_ratio: float
    tail_mean: float

    def __bool__(self) -> bool:
        return self.stable


def _linear_slope(series: np.ndarray) -> float:
    """Least-squares slope of ``series`` against the frame index."""
    x = np.arange(len(series), dtype=float)
    x -= x.mean()
    y = series - series.mean()
    denominator = float((x**2).sum())
    if denominator == 0:
        return 0.0
    return float((x * y).sum() / denominator)


def assess_stability(
    queue_series: Sequence[float],
    load_per_frame: float = 1.0,
    tail_fraction: float = 0.6,
    slope_tolerance: float = 0.02,
    blowup_tolerance: float = 3.0,
    min_frames: int = 20,
) -> StabilityVerdict:
    """Classify a queue series as stable or unstable.

    Parameters
    ----------
    queue_series:
        In-system packet counts, one per frame.
    load_per_frame:
        Expected injected packets per frame, used to normalise the
        slope (an unstable queue grows by a constant *fraction* of the
        load per frame).
    tail_fraction:
        The trailing fraction of the series used for the drift fit.
    slope_tolerance:
        Verdict is unstable when the normalised slope exceeds this.
    blowup_tolerance:
        ... or when tail mean exceeds this multiple of the early mean
        (with an additive floor so tiny queues don't trip it).
    """
    series = np.asarray(list(queue_series), dtype=float)
    if len(series) < min_frames:
        raise StabilityError(
            f"need at least {min_frames} frames to assess stability, got "
            f"{len(series)}"
        )
    tail_start = int(len(series) * (1.0 - tail_fraction))
    tail = series[tail_start:]
    slope = _linear_slope(tail)
    load = max(load_per_frame, 1e-9)
    normalised = slope / load

    head = series[: max(2, len(series) // 4)]
    head_mean = float(head.mean())
    tail_mean = float(tail.mean())
    floor = 5.0 * load + 10.0
    blowup = (tail_mean + 1.0) / (max(head_mean, floor) + 1.0)

    stable = normalised <= slope_tolerance and blowup <= blowup_tolerance
    return StabilityVerdict(
        stable=stable,
        slope_per_frame=slope,
        normalised_slope=normalised,
        blowup_ratio=blowup,
        tail_mean=tail_mean,
    )


__all__ = ["assess_stability", "StabilityVerdict"]
