"""Fault-tolerant fleet execution: retry, timeout, quarantine, resume.

The plain :class:`~repro.sim.sharding.ProcessExecutor` assumes a
healthy pool: one dead worker or one wedged cell takes the whole
campaign down, and an interrupted fleet restarts from zero. This
module adds the operational layer long campaigns need:

* **Retry with backoff** — transient failures (worker crashes, cell
  timeouts, raised exceptions) are retried up to ``max_retries`` times
  with exponential backoff and deterministic jitter.
* **Crash classification and quarantine** — a cell that fails twice
  with the *same* exception signature is deterministic, not transient:
  it is quarantined instead of burning its remaining retries (and,
  under ``strict``, named in the final error).
* **Per-cell timeouts** — a wedged cell is blamed and retried; cells
  that were healthy when the pool was torn down are re-queued without
  charging them an attempt.
* **Graceful degradation** — two consecutive pool-level crashes drop
  the executor to in-process serial execution rather than looping on a
  broken pool.
* **A durable manifest** — every completed cell is journalled (with a
  per-record checksum, so torn writes are detected and skipped) the
  moment it finishes. A re-run with ``resume=True`` skips completed
  cells and hands unfinished cells their checkpoint file, so they
  restart from the last snapshot instead of frame 0.

Determinism is preserved through all of it: cells are pure functions
of their spec, checkpoints restore bit-identically, and results are
folded in spec order — a fleet that crashed five times and resumed
twice produces records byte-identical to one clean run.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import math
import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.faults import active_injector, corrupt_file
from repro.sim.runner import CellResult
from repro.sim.sharding import _default_start_method, default_worker_count
from repro.sim.stability import StabilityVerdict

# ----------------------------------------------------------------------
# Cell identity and result serialisation
# ----------------------------------------------------------------------


def _unit_index(unit) -> int:
    """The unit's position axis: fleet ``index`` or sweep ``rate_index``."""
    value = getattr(unit, "index", None)
    if value is None:
        value = getattr(unit, "rate_index", 0)
    return int(value)


def unit_key(unit) -> str:
    """Stable identity of a work unit: position + full spec content.

    Keyed on the *spec content*, so a resumed fleet only reuses a
    manifest entry when the cell at that position is configured
    identically — editing one spec invalidates exactly that cell.
    Fleet units serialise their scenario spec; other unit shapes
    (e.g. sweep :class:`~repro.sim.sharding.CellSpec`) fall back to
    their dataclass ``repr``, which names every field.
    """
    spec = getattr(unit, "spec", None)
    if spec is not None and hasattr(spec, "to_json"):
        payload = f"{_unit_index(unit)}:{spec.to_json(sort_keys=True)}"
    else:
        payload = f"{_unit_index(unit)}:{unit!r}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cell_result_to_dict(result: CellResult) -> Dict[str, Any]:
    """Flatten a :class:`CellResult` to JSON-safe plain data.

    Floats round-trip bit-exactly through ``repr``-based JSON
    serialisation (including NaN, via the ``NaN`` literal both the
    encoder and decoder speak), so a manifest-recovered record equals
    the original dataclass.
    """
    verdict = result.verdict
    return {
        "rate_index": result.rate_index,
        "rate": result.rate,
        "seed": result.seed,
        "verdict": {
            "stable": verdict.stable,
            "slope_per_frame": verdict.slope_per_frame,
            "normalised_slope": verdict.normalised_slope,
            "blowup_ratio": verdict.blowup_ratio,
            "tail_mean": verdict.tail_mean,
        },
        "tail_queue": result.tail_queue,
        "throughput": result.throughput,
        "latency": result.latency,
        "frame_length": result.frame_length,
        "injected": result.injected,
        "delivered": result.delivered,
        "failures": result.failures,
    }


def cell_result_from_dict(data: Dict[str, Any]) -> CellResult:
    """Inverse of :func:`cell_result_to_dict` (ConfigurationError on junk)."""
    try:
        verdict = data["verdict"]
        return CellResult(
            rate_index=int(data["rate_index"]),
            rate=float(data["rate"]),
            seed=int(data["seed"]),
            verdict=StabilityVerdict(
                stable=bool(verdict["stable"]),
                slope_per_frame=float(verdict["slope_per_frame"]),
                normalised_slope=float(verdict["normalised_slope"]),
                blowup_ratio=float(verdict["blowup_ratio"]),
                tail_mean=float(verdict["tail_mean"]),
            ),
            tail_queue=float(data["tail_queue"]),
            throughput=float(data["throughput"]),
            latency=float(data["latency"]),
            frame_length=int(data["frame_length"]),
            injected=int(data["injected"]),
            delivered=int(data["delivered"]),
            failures=int(data["failures"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"manifest holds a malformed cell result: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(attempt, key)`` is ``backoff_base * 2**attempt`` capped at
    ``backoff_max``, times a jitter factor in ``[1 - jitter, 1 +
    jitter]`` drawn from a PRNG seeded by ``(key, attempt)`` — so
    retries of different cells desynchronise (no thundering herd when a
    wave dies together) while any given retry's delay is reproducible.
    """

    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_max: float = 2.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff times must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def delay(self, attempt: int, key: str) -> float:
        base = min(self.backoff_base * (2.0**attempt), self.backoff_max)
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = random.Random(f"{key}:{attempt}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


# ----------------------------------------------------------------------
# Fleet manifest: a checksummed append-only journal
# ----------------------------------------------------------------------


def _entry_digest(entry: Dict[str, Any]) -> str:
    canonical = json.dumps(entry, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


_FLEET_KEY = "__fleet__"


class FleetManifest:
    """Append-only journal of fleet progress under one directory.

    Layout::

        <directory>/manifest.jsonl    one JSON record per line
        <directory>/checkpoints/      per-cell simulation checkpoints

    Every line is ``{"sha256": <digest of entry>, "entry": {...}}``,
    appended, flushed and fsynced the moment the event happens — a
    crash mid-append leaves at most one torn final line, which the
    loader detects (bad JSON or digest mismatch) and skips. Later
    entries for the same key supersede earlier ones, so the journal
    never needs rewriting in place.
    """

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        os.makedirs(
            os.path.join(self.directory, "checkpoints"), exist_ok=True
        )
        self.path = os.path.join(self.directory, "manifest.jsonl")
        self.invalid_lines = 0
        self._completed: Dict[str, Dict[str, Any]] = {}
        self._fleet: Optional[Dict[str, Any]] = None
        self._load()

    # -- reading -------------------------------------------------------

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    entry = record["entry"]
                    if record["sha256"] != _entry_digest(entry):
                        raise ValueError("digest mismatch")
                except (
                    json.JSONDecodeError,
                    KeyError,
                    TypeError,
                    ValueError,
                ):
                    self.invalid_lines += 1
                    continue
                kind = entry.get("kind")
                if kind == "fleet":
                    self._fleet = entry
                elif kind == "completed":
                    self._completed[entry["key"]] = entry

    @property
    def fleet_entry(self) -> Optional[Dict[str, Any]]:
        return self._fleet

    def completed_result(self, key: str) -> Optional[CellResult]:
        entry = self._completed.get(key)
        if entry is None:
            return None
        return cell_result_from_dict(entry["result"])

    def completed_keys(self) -> List[str]:
        return list(self._completed)

    def checkpoint_path(self, key: str) -> str:
        return os.path.join(self.directory, "checkpoints", f"{key}.ckpt")

    # -- writing -------------------------------------------------------

    def _append(self, entry: Dict[str, Any]) -> None:
        line = json.dumps(
            {"sha256": _entry_digest(entry), "entry": entry},
            sort_keys=True,
        )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def record_fleet(self, fingerprint: str, cells: int) -> None:
        """Stamp (or verify) the fleet identity this manifest tracks."""
        if self._fleet is not None:
            if self._fleet.get("fingerprint") != fingerprint:
                raise ConfigurationError(
                    f"manifest {self.path} belongs to a different fleet "
                    "(spec list changed); use a fresh --checkpoint-dir or "
                    "delete the old one"
                )
            return
        entry = {
            "kind": "fleet",
            "key": _FLEET_KEY,
            "fingerprint": fingerprint,
            "cells": int(cells),
        }
        self._append(entry)
        self._fleet = entry

    def record_completed(
        self, key: str, index: int, result: CellResult
    ) -> None:
        entry = {
            "kind": "completed",
            "key": key,
            "index": int(index),
            "result": cell_result_to_dict(result),
        }
        self._append(entry)
        self._completed[key] = entry

    def record_failure(
        self, key: str, index: int, attempt: int, failure: str, detail: str
    ) -> None:
        """Journal a failure for observability (never read on resume)."""
        self._append(
            {
                "kind": "failure",
                "key": key,
                "index": int(index),
                "attempt": int(attempt),
                "failure": failure,
                "detail": detail[:500],
            }
        )


def fleet_fingerprint(units: Sequence) -> str:
    """Identity of a whole fleet: the ordered list of unit keys."""
    payload = json.dumps([unit_key(unit) for unit in units])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The fault-tolerant executor
# ----------------------------------------------------------------------


def _run_unit_attempt(task: Tuple[Any, int]) -> CellResult:
    """Module-level trampoline: fire matching faults, then run the unit."""
    unit, attempt = task
    injector = active_injector()
    if injector is not None:
        index = _unit_index(unit)
        path = getattr(unit, "checkpoint_path", None)
        if path and injector.should_corrupt(index, attempt):
            corrupt_file(path)
        injector.on_cell(index, attempt)
    return unit.run()


@dataclass
class CellStatus:
    """Everything the executor knows about one cell's journey."""

    index: int
    state: str = "pending"  # completed | failed | quarantined | pending
    attempts: int = 0
    source: str = "run"  # run | manifest
    failures: List[str] = field(default_factory=list)


class FaultTolerantExecutor:
    """An order-preserving ``map`` that survives crashes and wedged cells.

    Drop-in where :class:`~repro.sim.sharding.ProcessExecutor` fits
    (``map(units) -> results`` in input order), plus the recovery
    behaviour described in the module docstring. After ``map`` returns,
    ``statuses`` holds one :class:`CellStatus` per unit (input order).

    With ``strict=True`` (the default) any cell that still has no
    result after retries raises a :class:`ConfigurationError` naming
    the failed and quarantined cells — safe for callers that assume a
    complete result list. ``strict=False`` returns ``None`` at failed
    positions instead (what :func:`run_resilient_fleet` uses).
    """

    name = "resilient"

    def __init__(
        self,
        workers: Optional[int] = None,
        max_retries: int = 2,
        cell_timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        manifest: Optional[FleetManifest] = None,
        resume: bool = False,
        snapshot_interval: Optional[int] = None,
        use_processes: bool = True,
        strict: bool = True,
    ):
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ConfigurationError(
                f"cell_timeout must be > 0, got {cell_timeout}"
            )
        self.workers = workers or default_worker_count()
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=max_retries
        )
        self.cell_timeout = cell_timeout
        self.manifest = manifest
        self.resume = resume
        self.snapshot_interval = snapshot_interval
        self.use_processes = use_processes
        self.strict = strict
        self.statuses: List[CellStatus] = []
        self._pool_crashes = 0

    # -- bookkeeping ---------------------------------------------------

    def _prepare(self, units: Sequence) -> List[Any]:
        """Attach manifest checkpoints; stamp the fleet identity."""
        prepared = list(units)
        if self.manifest is not None:
            keys = [unit_key(unit) for unit in prepared]
            self.manifest.record_fleet(
                fleet_fingerprint(prepared), len(prepared)
            )
            prepared = [
                unit
                if getattr(unit, "checkpoint_path", None)
                or not hasattr(unit, "with_checkpoint")
                else unit.with_checkpoint(
                    self.manifest.checkpoint_path(key),
                    self.snapshot_interval,
                )
                for unit, key in zip(prepared, keys)
            ]
        return prepared

    def _note_failure(
        self,
        status: CellStatus,
        key: str,
        unit,
        attempt: int,
        kind: str,
        detail: str,
    ) -> bool:
        """Record one failed attempt; returns True when the cell retries."""
        signature = f"{kind}:{detail}"
        status.failures.append(signature)
        status.attempts = attempt + 1
        if self.manifest is not None:
            self.manifest.record_failure(
                key, _unit_index(unit), attempt, kind, detail
            )
        if (
            kind == "error"
            and status.failures.count(signature) >= 2
        ):
            # Same exception twice: deterministic, retries are wasted.
            status.state = "quarantined"
            return False
        if attempt >= self.retry_policy.max_retries:
            status.state = "failed"
            return False
        time.sleep(self.retry_policy.delay(attempt, key))
        return True

    # -- execution -----------------------------------------------------

    def map(self, units: Sequence) -> List[Optional[CellResult]]:
        units = self._prepare(units)
        n = len(units)
        keys = [unit_key(unit) for unit in units]
        self.statuses = [CellStatus(index=i) for i in range(n)]
        results: List[Optional[CellResult]] = [None] * n
        pending: List[Tuple[int, int]] = []  # (position, attempt)

        for position in range(n):
            if self.resume and self.manifest is not None:
                try:
                    recovered = self.manifest.completed_result(
                        keys[position]
                    )
                except ConfigurationError:
                    recovered = None
                if recovered is not None:
                    results[position] = recovered
                    self.statuses[position].state = "completed"
                    self.statuses[position].source = "manifest"
                    continue
            pending.append((position, 0))

        while pending:
            if self.use_processes:
                try:
                    pending = self._run_wave_processes(
                        units, keys, pending, results
                    )
                    self._pool_crashes = 0
                except _PoolCrashed as crash:
                    pending = crash.pending
                    self._pool_crashes += 1
                    if self._pool_crashes >= 2:
                        # The pool itself is unhealthy (not one bad
                        # cell): degrade to serial rather than loop.
                        self.use_processes = False
            else:
                pending = self._run_wave_serial(
                    units, keys, pending, results
                )

        if self.strict:
            bad = [
                status
                for status in self.statuses
                if status.state in ("failed", "quarantined")
            ]
            if bad:
                summary = "; ".join(
                    f"cell {s.index} {s.state} after {s.attempts} "
                    f"attempt(s) ({s.failures[-1] if s.failures else '?'})"
                    for s in bad
                )
                raise ConfigurationError(
                    f"{len(bad)} of {n} fleet cells did not complete: "
                    f"{summary}"
                )
        return results

    def _complete(self, position, units, keys, results, result) -> None:
        results[position] = result
        self.statuses[position].state = "completed"
        if self.manifest is not None:
            self.manifest.record_completed(
                keys[position], _unit_index(units[position]), result
            )

    def _run_wave_serial(self, units, keys, pending, results):
        """In-process fallback: same retry/quarantine logic, no pool."""
        requeue: List[Tuple[int, int]] = []
        for position, attempt in pending:
            status = self.statuses[position]
            try:
                result = _run_unit_attempt((units[position], attempt))
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                detail = f"{type(exc).__name__}: {exc}"
                if self._note_failure(
                    status, keys[position], units[position], attempt,
                    "error", detail,
                ):
                    requeue.append((position, attempt + 1))
                continue
            status.attempts = attempt + 1
            self._complete(position, units, keys, results, result)
        return requeue

    def _run_wave_processes(self, units, keys, pending, results):
        """One pool wave: submit up to ``workers`` cells, harvest all.

        Raises :class:`_PoolCrashed` (carrying the new pending list)
        when the pool breaks or a timeout forces a teardown — the
        caller decides whether to rebuild a pool or degrade to serial.
        """
        wave = pending[: self.workers]
        rest = pending[self.workers :]
        requeue: List[Tuple[int, int]] = []
        context = multiprocessing.get_context(_default_start_method())
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(wave)), mp_context=context
        )
        futures: Dict[Any, Tuple[int, int, float]] = {}
        crashed = False
        broken = False
        try:
            for position, attempt in wave:
                future = pool.submit(
                    _run_unit_attempt, (units[position], attempt)
                )
                futures[future] = (position, attempt, time.monotonic())
            for future, (position, attempt, started) in futures.items():
                status = self.statuses[position]
                if crashed:
                    # Pool already torn down; harvest finished futures.
                    if future.done() and not future.cancelled():
                        error = future.exception()
                        if error is None:
                            status.attempts = attempt + 1
                            self._complete(
                                position, units, keys, results,
                                future.result(),
                            )
                            continue
                    if broken:
                        # A dead worker breaks every in-flight future,
                        # and the pool cannot say which cell it was
                        # running — charge the whole blast radius one
                        # (transient, never quarantining) crash so the
                        # guilty cell's attempt counter advances.
                        if self._note_failure(
                            status, keys[position], units[position],
                            attempt, "crash", "worker process died",
                        ):
                            requeue.append((position, attempt + 1))
                    else:
                        # Timeout teardown: this cell was healthy when
                        # we killed the pool; requeue without charging
                        # an attempt.
                        requeue.append((position, attempt))
                    continue
                budget = None
                if self.cell_timeout is not None:
                    budget = max(
                        0.05,
                        started + self.cell_timeout - time.monotonic(),
                    )
                try:
                    result = future.result(timeout=budget)
                except concurrent.futures.TimeoutError:
                    crashed = True
                    self._teardown(pool)
                    if self._note_failure(
                        status, keys[position], units[position], attempt,
                        "timeout",
                        f"exceeded {self.cell_timeout:.3g}s",
                    ):
                        requeue.append((position, attempt + 1))
                    continue
                except concurrent.futures.process.BrokenProcessPool:
                    crashed = True
                    broken = True
                    if self._note_failure(
                        status, keys[position], units[position], attempt,
                        "crash", "worker process died",
                    ):
                        requeue.append((position, attempt + 1))
                    continue
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    detail = f"{type(exc).__name__}: {exc}"
                    if self._note_failure(
                        status, keys[position], units[position], attempt,
                        "error", detail,
                    ):
                        requeue.append((position, attempt + 1))
                    continue
                status.attempts = attempt + 1
                self._complete(position, units, keys, results, result)
        finally:
            self._teardown(pool)
        if crashed:
            raise _PoolCrashed(requeue + rest)
        return requeue + rest

    @staticmethod
    def _teardown(pool) -> None:
        """Kill a pool hard: wedged or dead workers must not block exit."""
        processes = list((getattr(pool, "_processes", None) or {}).values())
        for process in processes:
            if process.is_alive():
                process.terminate()
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for process in processes:
            process.join(timeout=5.0)


class _PoolCrashed(Exception):
    """Internal: a wave ended with a dead pool; carries remaining work."""

    def __init__(self, pending: List[Tuple[int, int]]):
        super().__init__("process pool crashed")
        self.pending = pending


# ----------------------------------------------------------------------
# The resilient fleet front door
# ----------------------------------------------------------------------


@dataclass
class ResilientFleetResult:
    """A fleet outcome that tolerates holes.

    ``records`` is in spec order with ``None`` at failed positions;
    ``summary`` aggregates the completed records (``None`` when none
    completed). ``complete`` is True when every cell produced a
    record.
    """

    records: List[Optional[CellResult]]
    summary: Optional[Any]
    statuses: List[CellStatus]
    failed_indices: List[int]
    quarantined_indices: List[int]

    @property
    def complete(self) -> bool:
        return not self.failed_indices and not self.quarantined_indices


def run_resilient_fleet(
    specs: Sequence,
    *,
    workers: Optional[int] = None,
    max_retries: int = 2,
    cell_timeout: Optional[float] = None,
    manifest_dir: Optional[str] = None,
    resume: bool = False,
    snapshot_interval: Optional[int] = None,
    retry_policy: Optional[RetryPolicy] = None,
    use_processes: bool = True,
) -> ResilientFleetResult:
    """Run a fleet of scenario specs with the full recovery stack.

    The fault-tolerant sibling of
    :func:`~repro.scenario.fleet.run_scenario_fleet`: same specs, same
    per-cell records, but crashes/timeouts retry, deterministic
    failures quarantine, and with ``manifest_dir`` the campaign is
    durable — an interrupted run re-invoked with ``resume=True`` skips
    completed cells and resumes unfinished ones from their last
    checkpoint. Always returns (partial results included); inspect
    ``result.complete`` / ``failed_indices``.
    """
    from repro.scenario.fleet import FleetUnit, aggregate_fleet

    units = [
        FleetUnit(spec=spec, index=index) for index, spec in enumerate(specs)
    ]
    if not units:
        raise ConfigurationError("a fleet needs at least one scenario spec")
    if resume and manifest_dir is None:
        raise ConfigurationError(
            "resume=True needs a manifest_dir to resume from"
        )
    manifest = FleetManifest(manifest_dir) if manifest_dir else None
    executor = FaultTolerantExecutor(
        workers=workers,
        max_retries=max_retries,
        cell_timeout=cell_timeout,
        retry_policy=retry_policy,
        manifest=manifest,
        resume=resume,
        snapshot_interval=snapshot_interval,
        use_processes=use_processes,
        strict=False,
    )
    records = executor.map(units)
    completed = [record for record in records if record is not None]
    summary = aggregate_fleet(completed).summary if completed else None
    return ResilientFleetResult(
        records=records,
        summary=summary,
        statuses=executor.statuses,
        failed_indices=[
            s.index for s in executor.statuses if s.state == "failed"
        ],
        quarantined_indices=[
            s.index for s in executor.statuses if s.state == "quarantined"
        ],
    )


__all__ = [
    "CellStatus",
    "FaultTolerantExecutor",
    "FleetManifest",
    "ResilientFleetResult",
    "RetryPolicy",
    "cell_result_from_dict",
    "cell_result_to_dict",
    "fleet_fingerprint",
    "run_resilient_fleet",
    "unit_key",
]
