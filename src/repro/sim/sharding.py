"""Sharded sweep execution: process-parallel (rate, seed) cells.

Every paper table bottoms out in a rate sweep, and each (rate, seed)
cell is an independent simulation — embarrassingly parallel. This
module turns a sweep into a flat list of picklable :class:`CellSpec`
work units and maps them over ``multiprocessing`` workers, then folds
the results through the *same* aggregation code the serial path uses
(:func:`repro.sim.runner.aggregate_rate_sweep`), so a sharded sweep is
record-for-record identical to a serial one.

**Why specs instead of closures.** ``run_rate_sweep`` factories are
usually closures over live network/model objects; closures do not
pickle. A :class:`CellSpec` instead *names* its protocol and injection
builders in a registry (or by ``"module:function"`` dotted path) and
carries only plain data — rate, seed, frames, keyword arguments — so
it crosses process boundaries cheaply and deterministically.

**Seeding.** Nothing random crosses a process boundary: each cell's
builders derive every RNG stream from the spec's own ``seed`` inside
the worker (child-seeded per cell), exactly as the serial loop does.
Same specs, any executor, any worker count => same records.

Builders::

    @register_protocol_builder("my-protocol")
    def my_protocol(rate, seed, **kwargs): ...          # -> protocol

    @register_injection_builder("my-injection")
    def my_injection(rate, seed, protocol, **kwargs): ...  # -> injection

    @register_pair_builder("my-pair")                   # when the two
    def my_pair(rate, seed, **kwargs): ...              # must share
        return protocol, injection                      # state (stores)

Pair builders exist for store-mode protocols, where the protocol is
constructed *from* the injection's ``PacketStore`` and the two must be
built together.

All three registries are views into the unified component registry
(:mod:`repro.scenario.registry`), the same table the declarative
:class:`~repro.scenario.spec.ScenarioSpec` layer resolves through. A
cell can therefore also carry a *whole network scenario* across the
process boundary (``CellSpec(scenario=...)`` / ``sweep_specs(...,
scenario=...)``) instead of naming protocol/injection builders.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.scenario.registry import register as _register_component
from repro.scenario.registry import resolve as _resolve_component
from repro.sim.runner import (
    CellResult,
    RateSweepRecord,
    aggregate_rate_sweep,
    measure_cell,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario.spec import ScenarioSpec

# ----------------------------------------------------------------------
# Builder registries — thin adapters over the unified component
# registry (repro.scenario.registry): the cell builders live in the
# same table the declarative ScenarioSpec layer resolves through, under
# the ``cell-protocol`` / ``cell-injection`` / ``cell-pair`` kinds.
# ----------------------------------------------------------------------


def register_protocol_builder(name: str, builder: Optional[Callable] = None):
    """Register ``builder(rate, seed, **kwargs) -> protocol`` under ``name``.

    Usable as a decorator (``builder`` omitted) or a direct call.
    Re-registering the same callable under the same name is a no-op;
    a different callable raises.
    """
    return _register_component("cell-protocol", name, builder)


def register_injection_builder(name: str, builder: Optional[Callable] = None):
    """Register ``builder(rate, seed, protocol, **kwargs) -> injection``."""
    return _register_component("cell-injection", name, builder)


def register_pair_builder(name: str, builder: Optional[Callable] = None):
    """Register ``builder(rate, seed, **kwargs) -> (protocol, injection)``."""
    return _register_component("cell-pair", name, builder)


def resolve_protocol_builder(name: str) -> Callable:
    return _resolve_component("cell-protocol", name, label="protocol builder")


def resolve_injection_builder(name: str) -> Callable:
    return _resolve_component(
        "cell-injection", name, label="injection builder"
    )


def resolve_pair_builder(name: str) -> Callable:
    return _resolve_component("cell-pair", name, label="pair builder")


# ----------------------------------------------------------------------
# Cell specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellSpec:
    """One picklable (rate, seed) work unit of a sweep.

    Either ``scenario`` carries a whole declarative
    :class:`~repro.scenario.spec.ScenarioSpec` (network description
    included — the cell rebuilds the network inside its worker with
    the cell's own rate and seed), or ``pair`` / both ``protocol`` and
    ``injection`` name a registered builder (or a
    ``"module:function"`` dotted path).
    ``requires`` lists modules to import before resolving — the modules
    whose import registers the builders — which makes specs robust
    under spawn-style workers that do not inherit the parent registry.

    ``backend`` optionally pins the run-loop backend
    (:data:`repro.staticsched.runloop.BACKENDS`) for the cell's
    simulation. It rides inside the spec so the choice survives any
    process boundary (spawn workers included) — though because every
    backend replays the scalar reference bit for bit, the choice can
    never change a record, only its wall-clock.
    """

    rate: float
    seed: int
    frames: int
    rate_index: int = 0
    protocol: Optional[str] = None
    injection: Optional[str] = None
    pair: Optional[str] = None
    scenario: Optional["ScenarioSpec"] = None
    protocol_kwargs: dict = field(default_factory=dict)
    injection_kwargs: dict = field(default_factory=dict)
    pair_kwargs: dict = field(default_factory=dict)
    load_per_frame: Optional[float] = None
    load_from_injected: bool = False
    requires: Tuple[str, ...] = ()
    backend: Optional[str] = None
    metrics: Optional[str] = None

    def __post_init__(self):
        if self.frames < 1:
            raise ConfigurationError(
                f"cell frames must be >= 1, got {self.frames}"
            )
        if self.metrics is not None:
            from repro.sim.metrics import RETENTIONS

            if self.metrics not in RETENTIONS:
                raise ConfigurationError(
                    f"cell metrics must be one of {', '.join(RETENTIONS)}, "
                    f"got {self.metrics!r}"
                )
        named = [
            kind
            for kind, value in (
                ("scenario", self.scenario),
                ("pair", self.pair),
                ("protocol+injection", self.protocol or self.injection),
            )
            if value is not None
        ]
        if len(named) > 1:
            raise ConfigurationError(
                "a cell names exactly one construction path — a scenario "
                "spec, a pair builder, or a protocol+injection builder "
                f"pair — got {', '.join(named)}"
            )
        if self.scenario is None and self.pair is None and (
            self.protocol is None or self.injection is None
        ):
            raise ConfigurationError(
                "a cell must carry a scenario spec, name a pair builder, "
                "or name both a protocol and an injection builder"
            )
        if self.scenario is not None and not self.rate > 0:
            # The scenario layer provisions its protocol from the
            # cell's rate, and Section-4 frame sizing needs rate > 0;
            # fail at spec-generation, not mid-sweep inside a worker.
            raise ConfigurationError(
                f"a scenario-carrying cell needs rate > 0, got {self.rate}"
            )

    def run(self) -> CellResult:
        return run_cell(self)


def run_cell(spec: CellSpec) -> CellResult:
    """Build and measure one cell (in whichever process this runs)."""
    from contextlib import nullcontext

    from repro.staticsched.runloop import use_backend

    for module in spec.requires:
        importlib.import_module(module)
    if spec.scenario is not None:
        # The cell's (rate, seed, frames) are the sweep axes: they
        # override the carried scenario's own values, and the cell's
        # rate is always absolute (sweeps resolve certified-rate
        # fractions at spec-generation time). Backend pinning happens
        # inside ScenarioSpec.run.
        effective = spec.scenario.replace(
            rate=spec.rate,
            rate_mode="absolute",
            seed=spec.seed,
            frames=spec.frames,
            backend=spec.backend or spec.scenario.backend,
            load_from_injected=(
                spec.load_from_injected or spec.scenario.load_from_injected
            ),
            metrics=spec.metrics or spec.scenario.metrics,
        )
        return effective.run(
            rate_index=spec.rate_index, load_per_frame=spec.load_per_frame
        )
    # Only pin a backend when the spec names one: a None backend keeps
    # whatever selection is ambient (so e.g. a scalar-reference
    # verification context still governs in-process cells).
    with use_backend(spec.backend) if spec.backend else nullcontext():
        if spec.pair is not None:
            protocol, injection = resolve_pair_builder(spec.pair)(
                spec.rate, spec.seed, **spec.pair_kwargs
            )
        else:
            protocol = resolve_protocol_builder(spec.protocol)(
                spec.rate, spec.seed, **spec.protocol_kwargs
            )
            injection = resolve_injection_builder(spec.injection)(
                spec.rate, spec.seed, protocol, **spec.injection_kwargs
            )
        return measure_cell(
            protocol,
            injection,
            spec.frames,
            rate=spec.rate,
            seed=spec.seed,
            rate_index=spec.rate_index,
            load_per_frame=spec.load_per_frame,
            load_from_injected=spec.load_from_injected,
            metrics=spec.metrics or "full",
        )


def sweep_specs(
    rates: Sequence[float],
    seeds: Sequence[int],
    frames: int,
    *,
    protocol: Optional[str] = None,
    injection: Optional[str] = None,
    pair: Optional[str] = None,
    scenario: Optional["ScenarioSpec"] = None,
    protocol_kwargs: Optional[dict] = None,
    injection_kwargs: Optional[dict] = None,
    pair_kwargs: Optional[dict] = None,
    load_per_frame: Optional[Callable[[float], float]] = None,
    load_from_injected: bool = False,
    requires: Tuple[str, ...] = (),
    backend: Optional[str] = None,
    metrics: Optional[str] = None,
) -> List[CellSpec]:
    """Flatten a (rate, seed) grid into rate-major :class:`CellSpec` units.

    The spec-generation stage of a sharded sweep; mirrors
    :func:`repro.sim.runner.build_factory_cells` cell for cell.
    ``rates``/``seeds`` are materialised once, so generators are safe.
    ``load_per_frame`` is an optional *callable* evaluated per rate at
    spec-generation time (the spec itself carries only the float).
    ``backend`` stamps a run-loop backend into every cell.
    ``scenario`` sweeps a declarative
    :class:`~repro.scenario.spec.ScenarioSpec` instead of named
    builders: every cell carries the whole network description and
    rebuilds it in its worker at the cell's (rate, seed).
    """
    rates = list(rates)
    seeds = list(seeds)
    specs: List[CellSpec] = []
    for index, rate in enumerate(rates):
        load = load_per_frame(rate) if load_per_frame is not None else None
        for seed in seeds:
            specs.append(
                CellSpec(
                    rate=rate,
                    seed=seed,
                    frames=frames,
                    rate_index=index,
                    protocol=protocol,
                    injection=injection,
                    pair=pair,
                    scenario=scenario,
                    protocol_kwargs=dict(protocol_kwargs or {}),
                    injection_kwargs=dict(injection_kwargs or {}),
                    pair_kwargs=dict(pair_kwargs or {}),
                    load_per_frame=load,
                    load_from_injected=load_from_injected,
                    requires=tuple(requires),
                    backend=backend,
                    metrics=metrics,
                )
            )
    return specs


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


def _run_unit(cell) -> CellResult:
    """Module-level trampoline so Pool.map can pickle the call."""
    return cell.run()


def default_worker_count() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _default_start_method() -> Optional[str]:
    # On Linux, fork inherits the builder registries (and test-local
    # builders) and skips re-importing numpy per worker. Elsewhere the
    # platform default stands — macOS offers fork but deliberately
    # defaults to spawn because forking a threaded/Objective-C parent
    # is unsafe; spawn workers recover registrations via each spec's
    # ``requires`` imports.
    if (
        sys.platform.startswith("linux")
        and "fork" in multiprocessing.get_all_start_methods()
    ):
        return "fork"
    return None


class SerialExecutor:
    """The trivial in-process executor: ``map`` is a list comprehension."""

    name = "serial"
    workers = 1

    def map(self, cells: Sequence) -> List[CellResult]:
        return [cell.run() for cell in cells]


class ProcessExecutor:
    """Map cells over a ``multiprocessing`` pool, order-preserving.

    ``chunksize=1`` keeps scheduling dynamic — sweep cells near the
    stability boundary can cost many times more than cells far below
    it, so static chunking would leave workers idle. Results come back
    in spec order regardless, which the aggregation relies on for
    bit-parity with the serial path.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        if workers is not None and workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        self.workers = workers or default_worker_count()
        self._start_method = start_method

    def map(self, cells: Sequence) -> List[CellResult]:
        cells = list(cells)
        if not cells:
            return []
        workers = min(self.workers, len(cells))
        context = multiprocessing.get_context(
            self._start_method or _default_start_method()
        )
        with context.Pool(processes=workers) as pool:
            return pool.map(_run_unit, cells, chunksize=1)


EXECUTORS = ("serial", "process", "resilient", "batched")


def executor_names() -> List[str]:
    return list(EXECUTORS)


def make_executor(kind: str, workers: Optional[int] = None, **kwargs):
    """Build an executor by CLI name (see :data:`EXECUTORS`).

    Extra keyword arguments are forwarded to the resilient executor
    (``max_retries``, ``cell_timeout``, ``manifest``, ``resume``, ...)
    and to the batched executor (``padding_ratio``, ``large_links``,
    ``strict``); the plain executors accept none.
    """
    if kind == "serial":
        if kwargs:
            raise ConfigurationError(
                "the serial executor takes no extra options"
            )
        return SerialExecutor()
    if kind == "process":
        if kwargs:
            raise ConfigurationError(
                "the process executor takes no extra options"
            )
        return ProcessExecutor(workers=workers)
    if kind == "resilient":
        # Imported lazily: resilience pulls in the scenario layer, and
        # the common serial/process paths should not pay for it.
        from repro.sim.resilience import FaultTolerantExecutor

        return FaultTolerantExecutor(workers=workers, **kwargs)
    if kind == "batched":
        # Imported lazily for the same reason: the batched executor
        # lives in the scenario layer (it batches whole FleetUnits).
        from repro.scenario.batched import BatchedExecutor

        return BatchedExecutor(workers=workers, **kwargs)
    raise ConfigurationError(
        f"unknown executor '{kind}'; choose from {', '.join(EXECUTORS)}"
    )


def run_sharded_sweep(
    specs: Sequence[CellSpec],
    executor=None,
) -> List[RateSweepRecord]:
    """Execute sweep specs and aggregate — the sharded ``run_rate_sweep``.

    ``executor`` defaults to :class:`SerialExecutor`; pass a
    :class:`ProcessExecutor` to shard across worker processes. Both
    fold through :func:`~repro.sim.runner.aggregate_rate_sweep`, so the
    records are identical either way.
    """
    if executor is None:
        executor = SerialExecutor()
    return aggregate_rate_sweep(executor.map(list(specs)))


__all__ = [
    "CellSpec",
    "EXECUTORS",
    "ProcessExecutor",
    "SerialExecutor",
    "default_worker_count",
    "executor_names",
    "make_executor",
    "register_injection_builder",
    "register_pair_builder",
    "register_protocol_builder",
    "resolve_injection_builder",
    "resolve_pair_builder",
    "resolve_protocol_builder",
    "run_cell",
    "run_sharded_sweep",
    "sweep_specs",
]
