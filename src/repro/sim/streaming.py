"""Bounded-memory streaming accumulators — the O(1) metrics core.

Long-horizon stability runs (the ROADMAP's 1e7+-slot soak lanes) cannot
afford per-frame Python lists or whole-history packet sets. This module
provides the fixed-size state every streaming consumer shares:

* :class:`StreamingMoments` — exact count/sum/min/max plus Welford
  mean/variance. The running sum uses Neumaier compensation, so for
  integer-valued inputs (every per-frame series and every slot latency
  in this codebase is an integer) the sum — and therefore the mean —
  is **bit-identical** to a batch ``np.mean`` recompute over the full
  history as long as the true sum stays below 2**53. Variance comes
  from Welford/Chan merges and is accurate to floating-point rounding,
  not bit-pinned to a particular batch formula.
* :class:`RingBuffer` — a fixed-capacity window over the newest values,
  for tail statistics (drift fits, sparklines, windowed means).
* :class:`QuantileSketch` — a deterministic DDSketch-style log-bucket
  sketch. Bucket ``k`` covers ``(gamma**(k-1), gamma**k]`` with
  ``gamma = (1 + alpha) / (1 - alpha)``; :meth:`QuantileSketch.quantile`
  returns the midpoint estimate ``2 * gamma**k / (gamma + 1)``, which
  lies within **relative error ``alpha``** of the exact nearest-rank
  order statistic (the value at 0-based rank ``ceil(q * n) - 1`` of the
  sorted data). Values below 1 are counted exactly as 0 (slot latencies
  are non-negative integers, so only a literal 0 lands there). Memory
  is one int per occupied bucket — ``O(log(max/min) / alpha)``,
  ~1000 buckets for latencies spanning 1..1e9 at the default
  ``alpha = 0.01`` — independent of how many values were pushed.
* :class:`StreamingSeries` — one per-frame scalar series: full-history
  moments, an exact head window (the blow-up detector's baseline), and
  a ring over the newest frames.
* :class:`StreamingLatency` — the delivered-packet summary: moments +
  sketch overall and per path length, fed by the protocol layer's
  summarize-and-release (delivered ids are folded here, then their
  store rows are reclaimed).

Everything is checkpointable: ``state_dict`` trees hold only plain
scalars and numpy arrays (the PR 6 checkpoint format), ``json`` floats
round-trip exactly, and restoring mid-stream continues bit-identically
— the compensation terms and ring layout are part of the state.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Default ring capacity for windowed tail statistics.
DEFAULT_WINDOW = 512

#: Default quantile-sketch relative-error bound.
DEFAULT_SKETCH_ALPHA = 0.01


def _checked_int(value, field: str, minimum: int = 0) -> int:
    """A non-negative (or ``minimum``-floored) integer, or a named error."""
    if isinstance(value, (bool, np.bool_)):
        raise ConfigurationError(
            f"streaming state '{field}' must be an integer, got {value!r}"
        )
    try:
        result = int(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"streaming state '{field}' must be an integer, got {value!r}"
        ) from exc
    if result != value or result < minimum:
        raise ConfigurationError(
            f"streaming state '{field}' must be an integer >= {minimum}, "
            f"got {value!r}"
        )
    return result


def _checked_float(value, field: str) -> float:
    if isinstance(value, (bool, np.bool_)):
        raise ConfigurationError(
            f"streaming state '{field}' must be a number, got {value!r}"
        )
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"streaming state '{field}' must be a number, got {value!r}"
        ) from exc


class StreamingMoments:
    """Exact count/sum/min/max plus Welford mean/variance, in O(1) space.

    The sum is Neumaier-compensated: pushing values one at a time or in
    numpy batches keeps an error term alongside the running sum, so
    integer-valued streams (whose true sum fits in a double's 53-bit
    mantissa) accumulate **exactly** — ``mean`` then equals the batch
    ``np.sum(all) / n`` bit for bit. Welford/Chan state feeds
    ``variance`` only.
    """

    __slots__ = ("count", "_sum", "_comp", "_min", "_max", "_wmean", "_m2")

    def __init__(self):
        self.count = 0
        self._sum = 0.0
        self._comp = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._wmean = 0.0
        self._m2 = 0.0

    def _add_compensated(self, value: float) -> None:
        total = self._sum + value
        if abs(self._sum) >= abs(value):
            self._comp += (self._sum - total) + value
        else:
            self._comp += (value - total) + self._sum
        self._sum = total

    def push(self, value: float) -> None:
        # This is the engine's per-frame hot path (four pushes per
        # frame in streaming retention), so the Neumaier step from
        # _add_compensated is inlined — identical arithmetic, one
        # Python call less.
        value = float(value)
        count = self.count + 1
        self.count = count
        current = self._sum
        total = current + value
        if abs(current) >= abs(value):
            self._comp += (current - total) + value
        else:
            self._comp += (value - total) + current
        self._sum = total
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        delta = value - self._wmean
        self._wmean += delta / count
        self._m2 += delta * (value - self._wmean)

    def push_many(self, values: np.ndarray) -> None:
        """Fold a whole batch (Chan's parallel merge for the variance)."""
        values = np.asarray(values)
        batch = int(values.size)
        if batch == 0:
            return
        if batch == 1:
            self.push(values.reshape(-1)[0])
            return
        self._add_compensated(float(values.sum()))
        low = float(values.min())
        high = float(values.max())
        if low < self._min:
            self._min = low
        if high > self._max:
            self._max = high
        batch_mean = float(np.mean(values, dtype=np.float64))
        batch_m2 = float(
            np.sum((values.astype(np.float64) - batch_mean) ** 2)
        )
        delta = batch_mean - self._wmean
        total = self.count + batch
        self._wmean += delta * batch / total
        self._m2 += batch_m2 + delta * delta * self.count * batch / total
        self.count = total

    @property
    def total(self) -> float:
        """The compensated running sum (exact for integer streams)."""
        return self._sum + self._comp

    @property
    def mean(self) -> float:
        if self.count == 0:
            return float("nan")
        return self.total / self.count

    @property
    def minimum(self) -> float:
        return self._min if self.count else float("nan")

    @property
    def maximum(self) -> float:
        return self._max if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Population variance (Welford); NaN when empty."""
        if self.count == 0:
            return float("nan")
        return self._m2 / self.count

    def copy(self) -> "StreamingMoments":
        clone = StreamingMoments()
        clone.load_state_dict(self.state_dict())
        return clone

    def state_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self._sum,
            "comp": self._comp,
            "min": self._min,
            "max": self._max,
            "wmean": self._wmean,
            "m2": self._m2,
        }

    def load_state_dict(self, state: dict) -> None:
        try:
            count = _checked_int(state["count"], "moments.count")
            fields = {
                key: _checked_float(state[key], f"moments.{key}")
                for key in ("sum", "comp", "min", "max", "wmean", "m2")
            }
        except KeyError as exc:
            raise ConfigurationError(
                f"streaming moments state is missing {exc}"
            ) from exc
        self.count = count
        self._sum = fields["sum"]
        self._comp = fields["comp"]
        self._min = fields["min"]
        self._max = fields["max"]
        self._wmean = fields["wmean"]
        self._m2 = fields["m2"]


class RingBuffer:
    """A fixed-capacity window over the newest pushed values."""

    __slots__ = ("capacity", "_data", "_count")

    def __init__(self, capacity: int, dtype=np.int64):
        capacity = int(capacity)
        if capacity < 1:
            raise ConfigurationError(
                f"ring capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._data = np.zeros(capacity, dtype=dtype)
        self._count = 0

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    @property
    def count(self) -> int:
        """Total values ever pushed (>= ``len`` once the ring wraps)."""
        return self._count

    def push(self, value) -> None:
        self._data[self._count % self.capacity] = value
        self._count += 1

    def values(self) -> np.ndarray:
        """The window contents, oldest to newest (a fresh array)."""
        filled = len(self)
        if filled < self.capacity:
            return self._data[:filled].copy()
        pos = self._count % self.capacity
        return np.concatenate([self._data[pos:], self._data[:pos]])

    def last(self):
        if self._count == 0:
            raise ConfigurationError("ring buffer is empty")
        return self._data[(self._count - 1) % self.capacity]

    def state_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "count": self._count,
            "values": self.values(),
        }

    def load_state_dict(self, state: dict) -> None:
        try:
            capacity = _checked_int(state["capacity"], "ring.capacity", 1)
            count = _checked_int(state["count"], "ring.count")
            values = np.asarray(state["values"])
        except KeyError as exc:
            raise ConfigurationError(
                f"ring buffer state is missing {exc}"
            ) from exc
        if capacity != self.capacity:
            raise ConfigurationError(
                f"ring buffer state has capacity {capacity}; this recorder "
                f"is configured for {self.capacity}"
            )
        filled = min(count, capacity)
        if values.ndim != 1 or values.size != filled:
            raise ConfigurationError(
                f"ring buffer state holds {values.size} values for a count "
                f"of {count} (expected {filled})"
            )
        self._count = count
        self._data[:] = 0
        if filled:
            start = (count - filled) % capacity
            positions = (start + np.arange(filled)) % capacity
            self._data[positions] = values.astype(self._data.dtype)


class QuantileSketch:
    """Deterministic log-bucket quantile sketch (DDSketch-style).

    Bucket ``k`` covers ``(gamma**(k-1), gamma**k]`` with
    ``gamma = (1 + alpha) / (1 - alpha)``; the estimate for any value in
    bucket ``k`` is the relative midpoint ``2 * gamma**k / (gamma + 1)``,
    within relative error ``alpha`` of the true value. ``quantile(q)``
    therefore approximates the exact **nearest-rank** order statistic
    (0-based rank ``ceil(q * n) - 1``) to within relative ``alpha``
    (plus at most one float-rounding bucket at exact bucket
    boundaries). Values in ``[0, 1)`` are counted exactly as 0;
    negative values are rejected.
    """

    __slots__ = ("alpha", "_gamma", "_inv_log_gamma", "_low", "_buckets")

    def __init__(self, alpha: float = DEFAULT_SKETCH_ALPHA):
        alpha = float(alpha)
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(
                f"sketch alpha must be in (0, 1), got {alpha}"
            )
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._inv_log_gamma = 1.0 / math.log(self._gamma)
        self._low = 0  # values in [0, 1), reported as 0.0
        self._buckets: Dict[int, int] = {}

    @property
    def count(self) -> int:
        return self._low + sum(self._buckets.values())

    def push(self, value: float) -> None:
        value = float(value)
        if value < 0.0:
            raise ConfigurationError(
                f"quantile sketch values must be >= 0, got {value}"
            )
        if value < 1.0:
            self._low += 1
            return
        key = int(math.ceil(math.log(value) * self._inv_log_gamma))
        self._buckets[key] = self._buckets.get(key, 0) + 1

    def push_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        if (values < 0.0).any():
            bad = float(values[values < 0.0][0])
            raise ConfigurationError(
                f"quantile sketch values must be >= 0, got {bad}"
            )
        low = values < 1.0
        self._low += int(low.sum())
        rest = values[~low]
        if rest.size == 0:
            return
        keys = np.ceil(np.log(rest) * self._inv_log_gamma).astype(np.int64)
        unique, counts = np.unique(keys, return_counts=True)
        buckets = self._buckets
        for key, n in zip(unique.tolist(), counts.tolist()):
            buckets[key] = buckets.get(key, 0) + n

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate; NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile q must be in [0, 1], got {q}")
        n = self.count
        if n == 0:
            return float("nan")
        rank = max(0, math.ceil(q * n) - 1)  # 0-based nearest rank
        cumulative = self._low
        if rank < cumulative:
            return 0.0
        estimate = 0.0
        for key in sorted(self._buckets):
            cumulative += self._buckets[key]
            estimate = 2.0 * self._gamma**key / (self._gamma + 1.0)
            if rank < cumulative:
                return estimate
        return estimate

    def copy(self) -> "QuantileSketch":
        clone = QuantileSketch(self.alpha)
        clone._low = self._low
        clone._buckets = dict(self._buckets)
        return clone

    def state_dict(self) -> dict:
        keys = np.asarray(sorted(self._buckets), dtype=np.int64)
        counts = np.asarray(
            [self._buckets[int(k)] for k in keys], dtype=np.int64
        )
        return {
            "alpha": self.alpha,
            "low": self._low,
            "keys": keys,
            "counts": counts,
        }

    def load_state_dict(self, state: dict) -> None:
        try:
            alpha = _checked_float(state["alpha"], "sketch.alpha")
            low = _checked_int(state["low"], "sketch.low")
            keys = np.asarray(state["keys"], dtype=np.int64)
            counts = np.asarray(state["counts"], dtype=np.int64)
        except KeyError as exc:
            raise ConfigurationError(
                f"quantile sketch state is missing {exc}"
            ) from exc
        if alpha != self.alpha:
            raise ConfigurationError(
                f"quantile sketch state has alpha {alpha}; this recorder is "
                f"configured for {self.alpha}"
            )
        if keys.size != counts.size or (counts < 0).any():
            raise ConfigurationError(
                "quantile sketch state keys/counts are inconsistent"
            )
        self._low = low
        self._buckets = {
            int(k): int(c) for k, c in zip(keys.tolist(), counts.tolist())
        }


class StreamingSeries:
    """One per-frame scalar series in O(window) space.

    Bundles full-history :class:`StreamingMoments`, an exact head
    accumulator over the first ``head_frames`` values (the blow-up
    detector's early baseline), and a :class:`RingBuffer` over the
    newest ``window`` values (drift fits, windowed means, sparklines).
    """

    __slots__ = ("window", "head_frames", "moments", "head", "ring")

    def __init__(
        self, window: int = DEFAULT_WINDOW, head_frames: Optional[int] = None
    ):
        window = int(window)
        if window < 8:
            raise ConfigurationError(
                f"streaming window must be >= 8, got {window}"
            )
        if head_frames is None:
            head_frames = window // 4
        head_frames = int(head_frames)
        if not 2 <= head_frames <= window // 4:
            # The windowed blow-up baseline must be a prefix the
            # delegating exact path (n <= window) would also use:
            # assess_stability's head is the first max(2, n // 4)
            # frames, so once n > window the batch head has at least
            # window // 4 frames and a head window no larger than that
            # stays a faithful (shorter, earlier) baseline.
            raise ConfigurationError(
                f"head_frames must be in [2, window // 4], got {head_frames}"
            )
        self.window = window
        self.head_frames = head_frames
        self.moments = StreamingMoments()
        self.head = StreamingMoments()
        self.ring = RingBuffer(window, dtype=np.int64)

    @property
    def count(self) -> int:
        return self.moments.count

    @property
    def last(self) -> int:
        if self.count == 0:
            return 0
        return int(self.ring.last())

    @property
    def maximum(self) -> float:
        return self.moments.maximum

    def push(self, value: int) -> None:
        self.moments.push(value)
        if self.moments.count <= self.head_frames:
            self.head.push(value)
        self.ring.push(value)

    def values(self) -> np.ndarray:
        """The newest ``min(count, window)`` values, oldest first."""
        return self.ring.values()

    def tail_mean(self, tail_fraction: float) -> float:
        """Mean over the trailing fraction, clipped to the window.

        Equals the full-history tail mean exactly while the requested
        tail still fits the ring (always true when ``count <= window``);
        beyond that it is the mean of the newest
        ``min(window, count - int(count * (1 - tail_fraction)))``
        frames.
        """
        if self.count == 0:
            return 0.0
        target = self.count - int(self.count * (1.0 - tail_fraction))
        filled = len(self.ring)
        take = max(1, min(filled, target))
        return float(np.mean(self.values()[filled - take :]))

    def state_dict(self) -> dict:
        return {
            "window": self.window,
            "head_frames": self.head_frames,
            "moments": self.moments.state_dict(),
            "head": self.head.state_dict(),
            "ring": self.ring.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        try:
            window = _checked_int(state["window"], "series.window", 1)
            head_frames = _checked_int(
                state["head_frames"], "series.head_frames", 2
            )
            moments = state["moments"]
            head = state["head"]
            ring = state["ring"]
        except KeyError as exc:
            raise ConfigurationError(
                f"streaming series state is missing {exc}"
            ) from exc
        if window != self.window or head_frames != self.head_frames:
            raise ConfigurationError(
                f"streaming series state was written for window="
                f"{window}/head_frames={head_frames}; this recorder is "
                f"configured for window={self.window}/head_frames="
                f"{self.head_frames}"
            )
        self.moments.load_state_dict(moments)
        self.head.load_state_dict(head)
        self.ring.load_state_dict(ring)


class StreamingLatency:
    """Delivered-latency summaries without retaining delivered packets.

    The protocol layer folds released delivered packets here (see
    ``DynamicProtocol.take_delivered``): exact moments plus a
    :class:`QuantileSketch`, overall and per path length. ``summary``
    merges the absorbed state with any still-pending (un-released)
    latencies into a :class:`~repro.sim.metrics.LatencySummary`-shaped
    result without mutating the accumulators, so it is idempotent.
    """

    __slots__ = ("alpha", "moments", "sketch", "_by_length")

    def __init__(self, alpha: float = DEFAULT_SKETCH_ALPHA):
        self.alpha = float(alpha)
        self.moments = StreamingMoments()
        self.sketch = QuantileSketch(self.alpha)
        self._by_length: Dict[
            int, Tuple[StreamingMoments, QuantileSketch]
        ] = {}

    @property
    def count(self) -> int:
        """Latencies absorbed so far (released delivered packets)."""
        return self.moments.count

    def absorb(self, latencies: np.ndarray, lengths: np.ndarray) -> None:
        latencies = np.asarray(latencies)
        lengths = np.asarray(lengths)
        if latencies.size == 0:
            return
        self.moments.push_many(latencies)
        self.sketch.push_many(latencies)
        for length in np.unique(lengths).tolist():
            bucket = self._by_length.get(int(length))
            if bucket is None:
                bucket = (StreamingMoments(), QuantileSketch(self.alpha))
                self._by_length[int(length)] = bucket
            subset = latencies[lengths == length]
            bucket[0].push_many(subset)
            bucket[1].push_many(subset)

    @staticmethod
    def _merged(moments, sketch, pending: np.ndarray):
        """(count, mean, median, p95, max) over absorbed + pending."""
        pending = np.asarray(pending)
        count = moments.count + int(pending.size)
        if count == 0:
            return None
        if pending.size:
            moments = moments.copy()
            moments.push_many(pending)
            sketch = sketch.copy()
            sketch.push_many(pending)
        return (
            count,
            moments.mean,
            sketch.quantile(0.5),
            sketch.quantile(0.95),
            moments.maximum,
        )

    def merged_stats(self, pending: np.ndarray):
        """Overall (count, mean, median, p95, max); None when empty."""
        return self._merged(self.moments, self.sketch, pending)

    def merged_stats_by_length(
        self, pending: np.ndarray, pending_lengths: np.ndarray
    ) -> Dict[int, tuple]:
        """Per-path-length merged stats (same tuple as merged_stats)."""
        pending = np.asarray(pending)
        pending_lengths = np.asarray(pending_lengths)
        results: Dict[int, tuple] = {}
        lengths = set(self._by_length)
        lengths.update(int(d) for d in np.unique(pending_lengths).tolist())
        for length in sorted(lengths):
            bucket = self._by_length.get(length)
            moments, sketch = bucket if bucket is not None else (
                StreamingMoments(),
                QuantileSketch(self.alpha),
            )
            subset = pending[pending_lengths == length]
            merged = self._merged(moments, sketch, subset)
            if merged is not None:
                results[length] = merged
        return results

    def state_dict(self) -> dict:
        return {
            "alpha": self.alpha,
            "moments": self.moments.state_dict(),
            "sketch": self.sketch.state_dict(),
            "by_length": {
                str(length): {
                    "moments": bucket[0].state_dict(),
                    "sketch": bucket[1].state_dict(),
                }
                for length, bucket in sorted(self._by_length.items())
            },
        }

    def load_state_dict(self, state: dict) -> None:
        try:
            alpha = _checked_float(state["alpha"], "latency.alpha")
            moments = state["moments"]
            sketch = state["sketch"]
            by_length = state["by_length"]
        except KeyError as exc:
            raise ConfigurationError(
                f"streaming latency state is missing {exc}"
            ) from exc
        if alpha != self.alpha:
            raise ConfigurationError(
                f"streaming latency state has alpha {alpha}; this recorder "
                f"is configured for {self.alpha}"
            )
        if not isinstance(by_length, dict):
            raise ConfigurationError(
                "streaming latency state 'by_length' must be a mapping"
            )
        self.moments.load_state_dict(moments)
        self.sketch.load_state_dict(sketch)
        self._by_length = {}
        for key, bucket_state in by_length.items():
            try:
                length = int(key)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"streaming latency state has a non-integer path "
                    f"length key {key!r}"
                ) from exc
            bucket = (StreamingMoments(), QuantileSketch(self.alpha))
            bucket[0].load_state_dict(bucket_state["moments"])
            bucket[1].load_state_dict(bucket_state["sketch"])
            self._by_length[length] = bucket


__all__ = [
    "DEFAULT_SKETCH_ALPHA",
    "DEFAULT_WINDOW",
    "QuantileSketch",
    "RingBuffer",
    "StreamingLatency",
    "StreamingMoments",
    "StreamingSeries",
]
