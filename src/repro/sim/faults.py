"""Deterministic fault injection for exercising the resilient executor.

Production code never imports this module's behaviour: faults only fire
when the ``REPRO_FAULTS`` environment variable carries a JSON plan, so
the default cost in every worker is one ``os.environ.get`` returning
``None``. The tests (and the CI fault-injection lane) set the variable
to drive worker crashes, exceptions, timeouts, checkpoint corruption
and mid-fleet interrupts through the *real* recovery paths — no mocks,
no monkeypatched executors.

Plan format — a JSON object keyed by fault kind, each a list of match
entries::

    REPRO_FAULTS='{
        "kill":      [{"index": 1, "attempt": 0}],
        "raise":     [{"index": 2}],
        "delay":     [{"index": 3, "attempt": 0, "seconds": 5.0}],
        "corrupt":   [{"index": 0, "attempt": 1}],
        "interrupt": [{"index": 4}]
    }'

An entry matches a (cell index, attempt) pair when each of its
``index`` / ``attempt`` fields is absent or equal — so ``{"index": 2}``
fires on every attempt of cell 2, and ``{}`` fires on everything.

Kinds:

``kill``
    Hard-exit the worker process (``os._exit(1)``) — the harshest
    failure: no exception propagates, no cleanup runs, the pool just
    loses a process. Only honoured inside a child process; in-process
    execution raises ``RuntimeError`` instead so a misconfigured test
    cannot take down the test runner.
``raise``
    Raise ``RuntimeError`` from inside the cell — a deterministic
    application error (the signature the quarantine logic keys on).
``delay``
    Sleep ``seconds`` before running — drives cells past the
    executor's per-cell timeout.
``corrupt``
    Flip bytes in the cell's checkpoint file (when one exists) before
    the run — exercises checksum detection and fresh-restart recovery.
``interrupt``
    Raise ``KeyboardInterrupt`` — simulates Ctrl-C for the
    interrupt/resume soak. Fires in whichever process runs the cell.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError

ENV_VAR = "REPRO_FAULTS"

_KINDS = ("kill", "raise", "delay", "corrupt", "interrupt")


def _matches(entry: Dict[str, Any], index: int, attempt: int) -> bool:
    if "index" in entry and int(entry["index"]) != index:
        return False
    if "attempt" in entry and int(entry["attempt"]) != attempt:
        return False
    return True


class FaultInjector:
    """A parsed fault plan; ``on_cell`` fires matching faults in order.

    ``corrupt`` is special: it needs the checkpoint path, so the
    executor trampoline asks :meth:`should_corrupt` separately before
    the cell builds.
    """

    def __init__(self, plan: Dict[str, List[Dict[str, Any]]]):
        if not isinstance(plan, dict):
            raise ConfigurationError(
                f"{ENV_VAR} must be a JSON object keyed by fault kind"
            )
        unknown = sorted(set(plan) - set(_KINDS))
        if unknown:
            raise ConfigurationError(
                f"unknown fault kind(s) {', '.join(unknown)}; choose from "
                f"{', '.join(_KINDS)}"
            )
        for kind, entries in plan.items():
            if not isinstance(entries, list) or not all(
                isinstance(e, dict) for e in entries
            ):
                raise ConfigurationError(
                    f"{ENV_VAR}[{kind!r}] must be a list of match objects"
                )
        self._plan = plan

    def _entries(self, kind: str, index: int, attempt: int):
        return [
            entry
            for entry in self._plan.get(kind, [])
            if _matches(entry, index, attempt)
        ]

    def should_corrupt(self, index: int, attempt: int) -> bool:
        return bool(self._entries("corrupt", index, attempt))

    def on_cell(self, index: int, attempt: int) -> None:
        """Fire kill/raise/delay/interrupt faults matching this cell."""
        if self._entries("kill", index, attempt):
            if multiprocessing.parent_process() is not None:
                os._exit(1)
            raise RuntimeError(
                f"fault plan kills cell {index} attempt {attempt}, but it "
                "is running in the main process (refusing to _exit)"
            )
        for entry in self._entries("delay", index, attempt):
            time.sleep(float(entry.get("seconds", 1.0)))
        if self._entries("interrupt", index, attempt):
            raise KeyboardInterrupt(
                f"injected interrupt at cell {index} attempt {attempt}"
            )
        if self._entries("raise", index, attempt):
            # Deliberately attempt-independent: the executor's
            # quarantine logic keys on the failure signature, and a
            # deterministic bug raises the same message every retry.
            raise RuntimeError(f"injected fault at cell {index}")


def corrupt_file(path: str, offset: int = 64, count: int = 8) -> None:
    """Flip ``count`` bytes of ``path`` starting at ``offset`` (clamped).

    Used by the ``corrupt`` fault and directly by tests; a no-op when
    the file does not exist yet (nothing to corrupt on attempt 0).
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    if size == 0:
        return
    offset = min(offset, size - 1)
    count = min(count, size - offset)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        chunk = handle.read(count)
        handle.seek(offset)
        handle.write(bytes(b ^ 0xFF for b in chunk))
        handle.flush()
        os.fsync(handle.fileno())


def active_injector() -> Optional[FaultInjector]:
    """The injector described by ``REPRO_FAULTS``, or ``None``.

    Re-reads the environment on every call: workers inherit (or
    receive, under spawn) the variable from the parent, and tests flip
    it between cases without rebuilding executors.
    """
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    try:
        plan = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{ENV_VAR} is not valid JSON: {exc}"
        ) from exc
    return FaultInjector(plan)


__all__ = [
    "ENV_VAR",
    "FaultInjector",
    "active_injector",
    "corrupt_file",
]
