"""Structured event tracing for protocol runs.

Debugging a dynamic protocol from aggregate metrics alone is painful:
"queue grew in frame 412" says nothing about *which* packet failed on
*which* link and how long it sat in a failed buffer. The tracer records
a bounded stream of per-packet events that the protocol emits when a
tracer is attached (``DynamicProtocol(..., tracer=Tracer())``); with no
tracer attached the protocol skips all event construction, so the
default path pays nothing.

Event kinds (chronological for a typical packet)::

    HELD        packet waiting out its Section-5 random shift
    RELEASED    shift elapsed, handed to the inner protocol
    ACTIVATED   joined the active set at a frame boundary
    PHASE1_HOP  crossed one hop in phase 1
    FAILED      missed its hop; parked in a failed buffer
    CLEANUP_OFFERED  won the per-link clean-up lottery this frame
    CLEANUP_HOP crossed one hop in a clean-up phase
    DELIVERED   reached its final destination

:class:`Tracer` is a ring buffer (``capacity`` most recent events) with
query helpers; :func:`packet_journey` and :func:`format_journey`
reconstruct a single packet's life for post-mortems.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError


class EventKind(str, Enum):
    """What happened to a packet."""

    HELD = "held"
    RELEASED = "released"
    ACTIVATED = "activated"
    PHASE1_HOP = "phase1_hop"
    FAILED = "failed"
    CLEANUP_OFFERED = "cleanup_offered"
    CLEANUP_HOP = "cleanup_hop"
    DELIVERED = "delivered"


@dataclass(frozen=True)
class TraceEvent:
    """One packet event.

    ``link`` is the link the event concerns (the hop crossed, the
    buffer the packet sits in, ...); ``None`` for events with no link
    (e.g. ``HELD``).
    """

    frame: int
    kind: EventKind
    packet_id: int
    link: Optional[int] = None

    def describe(self) -> str:
        """One human-readable line."""
        location = f" on link {self.link}" if self.link is not None else ""
        return f"frame {self.frame:>5}: packet {self.packet_id} {self.kind.value}{location}"


class Tracer:
    """Bounded recorder of :class:`TraceEvent` s.

    Parameters
    ----------
    capacity:
        Maximum events retained; older events are dropped first (the
        recent window is what post-mortems need). ``None`` keeps
        everything — only sensible for short runs.
    """

    def __init__(self, capacity: Optional[int] = 100_000):
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive or None, got {capacity}"
            )
        self._events: deque = deque(maxlen=capacity)
        self._recorded = 0

    # ------------------------------------------------------------------
    # Recording (called by protocols)
    # ------------------------------------------------------------------

    def record(
        self,
        frame: int,
        kind: EventKind,
        packet_id: int,
        link: Optional[int] = None,
    ) -> None:
        """Append one event."""
        self._events.append(TraceEvent(frame, kind, packet_id, link))
        self._recorded += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def recorded_total(self) -> int:
        """Events ever recorded (including dropped ones)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer."""
        return self._recorded - len(self._events)

    def events(
        self,
        kind: Optional[EventKind] = None,
        packet_id: Optional[int] = None,
        frame_range: Optional[Sequence[int]] = None,
    ) -> List[TraceEvent]:
        """Retained events, optionally filtered.

        ``frame_range`` is a ``(start, end)`` pair, end-exclusive.
        Filters compose (AND).
        """
        if frame_range is not None:
            start, end = frame_range
            if end < start:
                raise ConfigurationError(
                    f"frame_range end ({end}) precedes start ({start})"
                )
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if packet_id is not None and event.packet_id != packet_id:
                continue
            if frame_range is not None and not (
                frame_range[0] <= event.frame < frame_range[1]
            ):
                continue
            out.append(event)
        return out

    def counts(self) -> Dict[EventKind, int]:
        """Retained events per kind (kinds with zero events omitted)."""
        return dict(Counter(event.kind for event in self._events))

    def failure_hotspots(self, top: int = 5) -> List[tuple]:
        """Links ranked by retained FAILED events: ``[(link, count), ...]``."""
        if top <= 0:
            raise ConfigurationError(f"top must be positive, got {top}")
        counter: Counter = Counter(
            event.link
            for event in self._events
            if event.kind == EventKind.FAILED and event.link is not None
        )
        return counter.most_common(top)

    def to_dicts(self) -> List[dict]:
        """Plain-dict export (e.g. for JSON serialisation)."""
        return [
            {
                "frame": event.frame,
                "kind": event.kind.value,
                "packet_id": event.packet_id,
                "link": event.link,
            }
            for event in self._events
        ]


def packet_journey(tracer: Tracer, packet_id: int) -> List[TraceEvent]:
    """All retained events of one packet, in recording order."""
    return tracer.events(packet_id=packet_id)


def format_journey(tracer: Tracer, packet_id: int) -> str:
    """A packet's life as readable lines (empty string if untraced)."""
    events = packet_journey(tracer, packet_id)
    return "\n".join(event.describe() for event in events)


__all__ = [
    "EventKind",
    "TraceEvent",
    "Tracer",
    "packet_journey",
    "format_journey",
]
