"""Experiment runners: one simulation, and rate sweeps over seeds.

The benchmark harness shares these helpers so every table is produced
by the same code path: build protocol + injection from factories, run
``frames`` frames, assess stability, aggregate across seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.injection.base import InjectionProcess
from repro.sim.engine import FrameSimulation
from repro.sim.metrics import MetricsRecorder
from repro.sim.stability import StabilityVerdict, assess_stability

ProtocolFactory = Callable[[float, int], object]
InjectionFactory = Callable[[float, int, object], InjectionProcess]


def simulate_protocol(
    protocol,
    injection: InjectionProcess,
    frames: int,
) -> FrameSimulation:
    """Run one simulation to completion and return the engine."""
    simulation = FrameSimulation(protocol, injection)
    simulation.run(frames)
    return simulation


@dataclass
class RateSweepRecord:
    """Aggregated outcome of one (rate, seeds) sweep cell."""

    rate: float
    seeds: int
    stable_fraction: float
    mean_tail_queue: float
    mean_throughput: float
    mean_latency: float
    verdicts: List[StabilityVerdict] = field(default_factory=list)

    @property
    def stable(self) -> bool:
        """Majority verdict across seeds."""
        return self.stable_fraction >= 0.5


def run_rate_sweep(
    make_protocol: ProtocolFactory,
    make_injection: InjectionFactory,
    rates: Sequence[float],
    frames: int,
    seeds: Sequence[int] = (0, 1, 2),
    load_per_frame: Optional[Callable[[float], float]] = None,
) -> List[RateSweepRecord]:
    """Simulate every (rate, seed) cell and aggregate per rate.

    ``make_protocol(rate, seed)`` builds a fresh protocol;
    ``make_injection(rate, seed, protocol)`` builds the matching
    injection process (it may read the protocol's frame length).
    ``load_per_frame(rate)`` normalises the drift detector; defaults to
    ``rate * frame_length`` of each built protocol.
    """
    records: List[RateSweepRecord] = []
    for rate in rates:
        verdicts: List[StabilityVerdict] = []
        tails: List[float] = []
        throughputs: List[float] = []
        latencies: List[float] = []
        for seed in seeds:
            protocol = make_protocol(rate, seed)
            injection = make_injection(rate, seed, protocol)
            simulation = simulate_protocol(protocol, injection, frames)
            metrics = simulation.metrics
            if load_per_frame is not None:
                load = load_per_frame(rate)
            else:
                load = max(1.0, rate * float(protocol.frame_length))
            verdict = assess_stability(
                metrics.queue_series, load_per_frame=load
            )
            verdicts.append(verdict)
            tails.append(metrics.mean_queue())
            throughputs.append(metrics.throughput())
            summary = metrics.latency_summary(protocol.delivered)
            latencies.append(summary.mean)
        # Seeds that delivered nothing have NaN latency summaries; they
        # carry no latency information, so average over the seeds that
        # did deliver (NaN only if none did).
        observed = [value for value in latencies if not math.isnan(value)]
        records.append(
            RateSweepRecord(
                rate=rate,
                seeds=len(list(seeds)),
                stable_fraction=float(
                    np.mean([1.0 if v.stable else 0.0 for v in verdicts])
                ),
                mean_tail_queue=float(np.mean(tails)),
                mean_throughput=float(np.mean(throughputs)),
                mean_latency=(
                    float(np.mean(observed)) if observed else float("nan")
                ),
                verdicts=verdicts,
            )
        )
    return records


__all__ = ["simulate_protocol", "run_rate_sweep", "RateSweepRecord"]
