"""Experiment runners: one simulation, and rate sweeps over seeds.

The benchmark harness shares these helpers so every table is produced
by the same code path: build protocol + injection from factories, run
``frames`` frames, assess stability, aggregate across seeds.

The sweep is staged so serial and sharded execution share everything
but the map step:

1. **Spec generation** — the (rate, seed) grid becomes a flat list of
   cell work units (:class:`FactoryCell` here, or the picklable
   :class:`~repro.sim.sharding.CellSpec` for process pools).
2. **Execution** — each cell runs one simulation and reduces it to a
   :class:`CellResult` (:func:`measure_cell`). Any executor that maps
   ``cell.run()`` over the list works; the default is a trivial
   in-process loop.
3. **Aggregation** — :func:`aggregate_rate_sweep` folds the flat
   results back into per-rate :class:`RateSweepRecord` rows. Both the
   serial and the sharded path call this exact function, so a sharded
   sweep is record-for-record identical to a serial one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.injection.base import InjectionProcess
from repro.sim.engine import FrameSimulation
from repro.sim.stability import StabilityVerdict, assess_stability

ProtocolFactory = Callable[[float, int], object]
InjectionFactory = Callable[[float, int, object], InjectionProcess]


def simulate_protocol(
    protocol,
    injection: InjectionProcess,
    frames: int,
    metrics="full",
) -> FrameSimulation:
    """Run one simulation to completion and return the engine."""
    simulation = FrameSimulation(protocol, injection, metrics=metrics)
    simulation.run(frames)
    return simulation


@dataclass(frozen=True)
class CellResult:
    """Everything one (rate, seed) cell contributes to a sweep.

    Produced by :func:`measure_cell` inside whichever process ran the
    cell; only plain floats/ints and the (frozen, picklable)
    :class:`~repro.sim.stability.StabilityVerdict` cross process
    boundaries — never protocol or metrics objects.
    """

    rate_index: int
    rate: float
    seed: int
    verdict: StabilityVerdict
    tail_queue: float
    throughput: float
    latency: float
    frame_length: int
    injected: int
    delivered: int
    failures: int


def measure_cell(
    protocol,
    injection: InjectionProcess,
    frames: int,
    *,
    rate: float,
    seed: int,
    rate_index: int = 0,
    load_per_frame: Optional[float] = None,
    load_from_injected: bool = False,
    metrics="full",
) -> CellResult:
    """Run one cell and reduce it to a :class:`CellResult`.

    ``load_per_frame`` overrides the drift normalisation; the default is
    ``rate * frame_length`` of the built protocol. With
    ``load_from_injected`` the realised injection rate is used instead
    (the ``compare`` CLI convention for protocols run at their own
    certified rates). ``metrics`` selects the retention policy (see
    :class:`~repro.sim.engine.FrameSimulation`).
    """
    simulation = simulate_protocol(protocol, injection, frames, metrics)
    return summarize_cell(
        protocol,
        simulation.metrics,
        frames,
        rate=rate,
        seed=seed,
        rate_index=rate_index,
        load_per_frame=load_per_frame,
        load_from_injected=load_from_injected,
    )


def summarize_cell(
    protocol,
    metrics,
    frames: int,
    *,
    rate: float,
    seed: int,
    rate_index: int = 0,
    load_per_frame: Optional[float] = None,
    load_from_injected: bool = False,
) -> CellResult:
    """Reduce an already-run simulation to a :class:`CellResult`.

    The tail half of :func:`measure_cell`, split out so resumable runs
    (which drive the engine themselves, snapshotting between chunks)
    produce records identical to the one-shot path.
    """
    if load_from_injected:
        load = max(1.0, metrics.injected_total / max(1, frames))
    elif load_per_frame is not None:
        load = load_per_frame
    else:
        load = max(1.0, rate * float(protocol.frame_length))
    # The recorder dispatches on its own retention policy — the batch
    # assessor on full history, the windowed streaming assessor on the
    # bounded tracker. Byte-identical to the old direct
    # assess_stability(metrics.queue_series, ...) call in full mode.
    verdict = metrics.stability_verdict(load_per_frame=load)
    summary = metrics.latency_summary(protocol.delivered)
    potential = getattr(protocol, "potential", None)
    return CellResult(
        rate_index=rate_index,
        rate=rate,
        seed=seed,
        verdict=verdict,
        tail_queue=metrics.mean_queue(),
        throughput=metrics.throughput(),
        latency=summary.mean,
        frame_length=int(protocol.frame_length),
        injected=metrics.injected_total,
        delivered=metrics.delivered_count(),
        failures=(
            int(potential.total_failures) if potential is not None else 0
        ),
    )


@dataclass
class FactoryCell:
    """One (rate, seed) work unit closed over protocol/injection factories.

    The in-process counterpart of the registry-named
    :class:`~repro.sim.sharding.CellSpec`: it carries live callables, so
    it is only picklable when the factories are module-level functions.
    Closures stay on the serial path; process pools want ``CellSpec``.
    """

    make_protocol: ProtocolFactory
    make_injection: InjectionFactory
    rate: float
    seed: int
    frames: int
    rate_index: int = 0
    load_per_frame: Optional[float] = None

    def run(self) -> CellResult:
        protocol = self.make_protocol(self.rate, self.seed)
        injection = self.make_injection(self.rate, self.seed, protocol)
        return measure_cell(
            protocol,
            injection,
            self.frames,
            rate=self.rate,
            seed=self.seed,
            rate_index=self.rate_index,
            load_per_frame=self.load_per_frame,
        )


def build_factory_cells(
    make_protocol: ProtocolFactory,
    make_injection: InjectionFactory,
    rates: Sequence[float],
    frames: int,
    seeds: Sequence[int],
    load_per_frame: Optional[Callable[[float], float]] = None,
) -> List[FactoryCell]:
    """Flatten a (rate, seed) grid into rate-major cell work units.

    ``rates`` and ``seeds`` are materialised exactly once, so passing
    generators is safe (each cell — and the seed count on the final
    records — sees the full sequence).
    """
    rates = list(rates)
    seeds = list(seeds)
    cells: List[FactoryCell] = []
    for index, rate in enumerate(rates):
        load = load_per_frame(rate) if load_per_frame is not None else None
        for seed in seeds:
            cells.append(
                FactoryCell(
                    make_protocol=make_protocol,
                    make_injection=make_injection,
                    rate=rate,
                    seed=seed,
                    frames=frames,
                    rate_index=index,
                    load_per_frame=load,
                )
            )
    return cells


@dataclass
class RateSweepRecord:
    """Aggregated outcome of one (rate, seeds) sweep cell."""

    rate: float
    seeds: int
    stable_fraction: float
    mean_tail_queue: float
    mean_throughput: float
    mean_latency: float
    verdicts: List[StabilityVerdict] = field(default_factory=list)

    @property
    def stable(self) -> bool:
        """Majority verdict across seeds."""
        return self.stable_fraction >= 0.5


def aggregate_rate_sweep(
    results: Sequence[CellResult],
) -> List[RateSweepRecord]:
    """Fold flat cell results into per-rate records.

    Cells are grouped by ``rate_index`` (so duplicate rate values stay
    distinct rows, exactly as the serial loop produced them) and
    averaged in input order — an order-preserving executor therefore
    yields bit-identical records to the serial path.
    """
    groups: dict = {}
    for result in results:
        groups.setdefault(result.rate_index, []).append(result)
    records: List[RateSweepRecord] = []
    for index in sorted(groups):
        cells = groups[index]
        mixed = {cell.rate for cell in cells} - {cells[0].rate}
        if mixed:
            # Hand-built specs that forgot distinct rate_index values
            # would otherwise be silently averaged into one wrong row.
            raise ConfigurationError(
                f"cells with rate_index {index} mix rates "
                f"{sorted({cells[0].rate, *mixed})}; give each rate its "
                "own rate_index (sweep_specs does this automatically)"
            )
        verdicts = [cell.verdict for cell in cells]
        latencies = [cell.latency for cell in cells]
        # Seeds that delivered nothing have NaN latency summaries; they
        # carry no latency information, so average over the seeds that
        # did deliver (NaN only if none did).
        observed = [value for value in latencies if not math.isnan(value)]
        records.append(
            RateSweepRecord(
                rate=cells[0].rate,
                seeds=len(cells),
                stable_fraction=float(
                    np.mean([1.0 if v.stable else 0.0 for v in verdicts])
                ),
                mean_tail_queue=float(
                    np.mean([cell.tail_queue for cell in cells])
                ),
                mean_throughput=float(
                    np.mean([cell.throughput for cell in cells])
                ),
                mean_latency=(
                    float(np.mean(observed)) if observed else float("nan")
                ),
                verdicts=verdicts,
            )
        )
    return records


def run_rate_sweep(
    make_protocol: ProtocolFactory,
    make_injection: InjectionFactory,
    rates: Sequence[float],
    frames: int,
    seeds: Sequence[int] = (0, 1, 2),
    load_per_frame: Optional[Callable[[float], float]] = None,
    executor=None,
) -> List[RateSweepRecord]:
    """Simulate every (rate, seed) cell and aggregate per rate.

    ``make_protocol(rate, seed)`` builds a fresh protocol;
    ``make_injection(rate, seed, protocol)`` builds the matching
    injection process (it may read the protocol's frame length).
    ``load_per_frame(rate)`` normalises the drift detector; defaults to
    ``rate * frame_length`` of each built protocol.

    ``executor`` is anything with ``map(cells) -> results`` over
    ``cell.run()`` work units (see :mod:`repro.sim.sharding`); ``None``
    runs the cells in-process. A process executor requires the
    factories to be picklable (module-level functions, not closures).
    """
    cells = build_factory_cells(
        make_protocol, make_injection, rates, frames, seeds, load_per_frame
    )
    if executor is None:
        results = [cell.run() for cell in cells]
    else:
        results = executor.map(cells)
    return aggregate_rate_sweep(results)


__all__ = [
    "simulate_protocol",
    "run_rate_sweep",
    "RateSweepRecord",
    "CellResult",
    "FactoryCell",
    "build_factory_cells",
    "measure_cell",
    "summarize_cell",
    "aggregate_rate_sweep",
]
