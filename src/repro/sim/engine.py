"""The frame-granular simulation loop.

Couples an :class:`~repro.injection.base.InjectionProcess` with a
protocol object and a :class:`~repro.sim.metrics.MetricsRecorder`. The
engine operates at frame granularity — justified because the protocol
activates packets only at frame boundaries, so the multiset of packets
injected within a frame fully determines the dynamics (injection-slot
stamps only feed latency bookkeeping).

The protocol is duck-typed; anything exposing

* ``frame_length`` (int),
* ``run_frame(packets) -> FrameReport``-like (with ``injected``,
  ``active_in_system``, ``failed_in_system``, ``potential`` fields),
* ``packets_in_system`` and ``delivered``

works — both :class:`~repro.core.protocol.DynamicProtocol` and
:class:`~repro.core.adversarial.ShiftedDynamicProtocol` qualify.

When the protocol and the injection process share one
:class:`~repro.injection.store.PacketStore`, the engine feeds the
protocol raw index arrays (``indices_for_range``) and no packet
objects are materialised anywhere in the loop; otherwise it falls back
to object batches, byte-compatible with the seed engine.
"""

from __future__ import annotations

from typing import Optional

from repro.core.steps import drive_steps
from repro.errors import ConfigurationError
from repro.injection.base import InjectionProcess
from repro.sim.metrics import RETENTIONS, MetricsRecorder


class FrameSimulation:
    """Drive a protocol with an injection process, frame by frame.

    ``metrics`` selects the retention policy — ``"full"`` (default,
    whole-history series, byte-identical to the historical engine) or
    ``"streaming"`` (bounded memory: series fold into O(1) accumulators
    and, for store-mode protocols, delivered packets are summarised and
    released every ``release_interval`` frames so the store stays
    bounded too). A pre-built :class:`MetricsRecorder` may be passed
    instead of a policy name to control window / interval / sketch
    parameters.
    """

    def __init__(
        self,
        protocol,
        injection: InjectionProcess,
        audit=None,
        metrics="full",
    ):
        if not hasattr(protocol, "run_frame"):
            raise ConfigurationError(
                f"{type(protocol).__name__} does not expose run_frame()"
            )
        self._protocol = protocol
        self._injection = injection
        self._audit = audit
        if isinstance(metrics, MetricsRecorder):
            self._metrics = metrics
        elif metrics in RETENTIONS:
            self._metrics = MetricsRecorder(retention=metrics)
        else:
            raise ConfigurationError(
                f"metrics must be one of {', '.join(RETENTIONS)} or a "
                f"MetricsRecorder, got {metrics!r}"
            )
        self._frame = 0
        protocol_store = getattr(protocol, "store", None)
        if (
            protocol_store is not None
            and getattr(injection, "store", None) is not protocol_store
        ):
            # A store-mode protocol fed by an injection process with a
            # different (or no) store would crash — or worse,
            # reinterpret foreign packets — on the first non-empty
            # frame; fail at construction instead.
            raise ConfigurationError(
                "protocol runs in store mode but the injection process "
                "does not share its PacketStore; pass "
                "store=injection.store when building the protocol"
            )
        self._use_indices = (
            protocol_store is not None
            and not getattr(injection, "_is_legacy", lambda: True)()
        )

    @property
    def protocol(self):
        return self._protocol

    @property
    def injection(self) -> InjectionProcess:
        return self._injection

    @property
    def metrics(self) -> MetricsRecorder:
        return self._metrics

    @property
    def frames_run(self) -> int:
        return self._frame

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def state_dict(self, copy: bool = True) -> dict:
        """Snapshot of the whole simulation at the current frame boundary.

        The protocol runs each frame to completion, so between frames
        every layer is quiescent and the boundary is a natural
        checkpoint: restoring this snapshot and continuing is
        bit-identical to never having stopped, on every backend.
        Requires a store-mode protocol sharing the injection's store
        and an injection process with checkpoint support. ``copy=False``
        lets the big array leaves alias live buffers — only for callers
        that serialize the snapshot before the simulation runs again.
        """
        store = getattr(self._protocol, "store", None)
        if store is None:
            raise ConfigurationError(
                "checkpointing requires a store-mode protocol"
            )
        state = {
            "frame": self._frame,
            "protocol": self._protocol.state_dict(copy=copy),
            "store": store.state_dict(copy=copy),
            "injection": self._injection.state_dict(),
            "metrics": self._metrics.state_dict(),
        }
        model = self._protocol.model
        model_state = getattr(model, "state_dict", None)
        state["model"] = model_state() if model_state is not None else None
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this simulation.

        The simulation must have been freshly built from the same
        configuration (topology, scheduler, injection, seed) that
        produced the snapshot; only mutable state is restored.
        """
        store = getattr(self._protocol, "store", None)
        if store is None:
            raise ConfigurationError(
                "checkpointing requires a store-mode protocol"
            )
        for key in ("frame", "protocol", "store", "injection", "metrics"):
            if key not in state:
                raise ConfigurationError(
                    f"simulation state is missing '{key}'"
                )
        model = self._protocol.model
        model_state = state.get("model")
        loader = getattr(model, "load_state_dict", None)
        if model_state is not None and loader is None:
            raise ConfigurationError(
                f"checkpoint carries state for a stateful model but "
                f"{type(model).__name__} has no load_state_dict()"
            )
        if model_state is None and getattr(model, "state_dict", None):
            raise ConfigurationError(
                f"checkpoint has no model state but {type(model).__name__} "
                "is stateful"
            )
        self._protocol.load_state_dict(state["protocol"])
        store.load_state_dict(state["store"])
        self._injection.load_state_dict(state["injection"])
        self._metrics.load_state_dict(state["metrics"])
        if model_state is not None:
            loader(model_state)
        self._frame = int(state["frame"])

    def run(self, frames: int) -> MetricsRecorder:
        """Advance the simulation by ``frames`` frames."""
        return drive_steps(self.run_steps(frames))

    def run_steps(self, frames: int):
        """Generator form of :meth:`run` (see :mod:`repro.core.steps`).

        Yields the frame loop's :class:`~repro.core.steps.AlgorithmCall`
        items (via the protocol's ``run_frame_steps``) and returns the
        metrics recorder. Injection, auditing and metrics accounting all
        happen in here, so driving this generator — serially or from
        the batched fleet kernel — is bit-identical to :meth:`run`.
        """
        if frames < 0:
            raise ConfigurationError(f"frames must be >= 0, got {frames}")
        frame_length = int(self._protocol.frame_length)
        frame_steps = getattr(self._protocol, "run_frame_steps", None)
        no_packets: tuple = ()
        # Cadence is a pure function of the frame number, so a resumed
        # run releases at exactly the frames the uninterrupted run did.
        release_every = (
            self._metrics.release_interval if self._metrics.streaming else 0
        )
        has_total = hasattr(self._protocol, "delivered_total")
        for _ in range(frames):
            start = self._frame * frame_length
            if self._use_indices:
                packets = self._injection.indices_for_range(
                    start, start + frame_length
                )
                injected = int(packets.size)
            else:
                packets = self._injection.packets_for_range(
                    start, start + frame_length
                )
                injected = len(packets)
            if self._audit is not None:
                # The audit is sliding-window over slots; feeding whole
                # frames is conservative only if the window is a
                # multiple of the frame; per-slot feeding stays exact.
                # Empty frames skip the bucketing entirely — the audit
                # still sees every slot so its window keeps sliding.
                by_slot: dict = {}
                if injected:
                    if self._use_indices:
                        store = self._injection.store
                        stamps = store.injected_at[packets]
                        for index, slot in zip(
                            packets.tolist(), stamps.tolist()
                        ):
                            by_slot.setdefault(slot, []).append(
                                store.view(index)
                            )
                    else:
                        for packet in packets:
                            by_slot.setdefault(packet.injected_at, []).append(
                                packet
                            )
                for slot in range(start, start + frame_length):
                    self._audit.observe(slot, by_slot.get(slot, no_packets))
            if frame_steps is not None:
                report = yield from frame_steps(packets)
            else:
                report = self._protocol.run_frame(packets)
            self._metrics.record_frame(
                injected=injected,
                in_system=self._protocol.packets_in_system,
                active=report.active_in_system,
                failed=report.failed_in_system,
                potential=report.potential,
                delivered_total=(
                    self._protocol.delivered_total
                    if has_total
                    else len(self._protocol.delivered)
                ),
            )
            self._frame += 1
            if release_every and self._frame % release_every == 0:
                self._release_delivered()
        return self._metrics

    def _release_delivered(self) -> None:
        """Fold pending delivered packets into the latency accumulators
        and reclaim their store rows.

        Only store-mode protocols expose ``take_delivered`` /
        ``compact_store``; object-mode protocols keep their delivered
        list (the recorder is still bounded, the packet objects are
        not — documented in PERFORMANCE.md).
        """
        take = getattr(self._protocol, "take_delivered", None)
        if take is None or getattr(self._protocol, "store", None) is None:
            return
        indices = take()
        if indices.size:
            store = self._protocol.store
            self._metrics.absorb_latencies(
                store.latencies(indices), store.path_lengths(indices)
            )
        self._protocol.compact_store()


__all__ = ["FrameSimulation"]
