"""Metrics collection for protocol simulations.

One :class:`MetricsRecorder` per simulation run. Records a per-frame
time series (queue sizes, potential, cumulative counts) plus, at the
end, latency statistics derived from the delivered packets. Everything
the EXPERIMENTS tables report flows through here, so benches and tests
read a single, consistent schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.injection.packet import Packet
from repro.injection.store import PacketSequence


@dataclass
class LatencySummary:
    """Latency statistics (in slots) for a set of delivered packets.

    An empty set has ``count == 0`` and ``NaN`` statistics — "no
    packets delivered" must not read like "packets delivered with zero
    latency" (the all-zero summary it used to produce was
    indistinguishable from genuinely instant delivery).
    """

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    @staticmethod
    def empty() -> "LatencySummary":
        nan = float("nan")
        return LatencySummary(0, nan, nan, nan, nan)

    @staticmethod
    def from_latencies(latencies) -> "LatencySummary":
        """Summary of a raw latency vector (in slots)."""
        latencies = np.asarray(latencies, dtype=float)
        if latencies.size == 0:
            return LatencySummary.empty()
        return LatencySummary(
            count=int(latencies.size),
            mean=float(latencies.mean()),
            median=float(np.median(latencies)),
            p95=float(np.percentile(latencies, 95)),
            maximum=float(latencies.max()),
        )

    @staticmethod
    def from_packets(packets: Sequence[Packet]) -> "LatencySummary":
        if isinstance(packets, PacketSequence):
            # Store-backed delivery sets: one vectorized gather instead
            # of a Python loop over views.
            if len(packets) == 0:
                return LatencySummary.empty()
            return LatencySummary.from_latencies(
                packets.store.latencies(packets.indices)
            )
        if not packets:
            return LatencySummary.empty()
        return LatencySummary.from_latencies(
            np.asarray([p.latency() for p in packets], dtype=float)
        )


@dataclass
class MetricsRecorder:
    """Per-frame series plus end-of-run summaries."""

    frames: int = 0
    injected_total: int = 0
    queue_series: List[int] = field(default_factory=list)
    active_series: List[int] = field(default_factory=list)
    failed_series: List[int] = field(default_factory=list)
    potential_series: List[int] = field(default_factory=list)
    delivered_series: List[int] = field(default_factory=list)
    injected_series: List[int] = field(default_factory=list)

    def record_frame(
        self,
        injected: int,
        in_system: int,
        active: int,
        failed: int,
        potential: int,
        delivered_total: int,
    ) -> None:
        self.frames += 1
        self.injected_total += injected
        self.injected_series.append(injected)
        self.queue_series.append(in_system)
        self.active_series.append(active)
        self.failed_series.append(failed)
        self.potential_series.append(potential)
        self.delivered_series.append(delivered_total)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    _SERIES = (
        "queue_series",
        "active_series",
        "failed_series",
        "potential_series",
        "delivered_series",
        "injected_series",
    )

    def state_dict(self) -> dict:
        state = {"frames": self.frames, "injected_total": self.injected_total}
        for name in self._SERIES:
            state[name] = list(getattr(self, name))
        return state

    def load_state_dict(self, state: dict) -> None:
        try:
            frames = int(state["frames"])
            injected_total = int(state["injected_total"])
            series = {
                name: [int(v) for v in state[name]] for name in self._SERIES
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"invalid metrics state: {exc}") from exc
        for name, values in series.items():
            if len(values) != frames:
                raise ConfigurationError(
                    f"metrics state '{name}' has {len(values)} entries for "
                    f"{frames} frames"
                )
        self.frames = frames
        self.injected_total = injected_total
        for name, values in series.items():
            setattr(self, name, values)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    @property
    def final_queue(self) -> int:
        return self.queue_series[-1] if self.queue_series else 0

    @property
    def max_queue(self) -> int:
        return max(self.queue_series) if self.queue_series else 0

    def mean_queue(self, tail_fraction: float = 0.5) -> float:
        """Mean in-system count over the trailing fraction of the run.

        ``tail_fraction`` must lie in ``(0, 1]`` — values above 1 used
        to produce a negative slice start that silently averaged a
        window *from the tail end*, reporting a wrong (and smaller)
        window as if it were the requested one.
        """
        if not 0.0 < tail_fraction <= 1.0:
            raise ConfigurationError(
                f"tail_fraction must be in (0, 1], got {tail_fraction}"
            )
        if not self.queue_series:
            return 0.0
        start = int(len(self.queue_series) * (1.0 - tail_fraction))
        return float(np.mean(self.queue_series[start:]))

    def delivered_count(self) -> int:
        return self.delivered_series[-1] if self.delivered_series else 0

    def throughput(self) -> float:
        """Delivered packets per frame."""
        if self.frames == 0:
            return 0.0
        return self.delivered_count() / self.frames

    def latency_summary(self, delivered: Sequence[Packet]) -> LatencySummary:
        return LatencySummary.from_packets(delivered)

    def latency_by_path_length(
        self, delivered: Sequence[Packet]
    ) -> Dict[int, LatencySummary]:
        """Latency statistics grouped by path length (for Theorem 8)."""
        if isinstance(delivered, PacketSequence):
            if len(delivered) == 0:
                return {}
            store, indices = delivered.store, delivered.indices
            lengths = store.path_lengths(indices)
            latencies = store.latencies(indices)
            return {
                int(d): LatencySummary.from_latencies(latencies[lengths == d])
                for d in np.unique(lengths)
            }
        groups: Dict[int, List[Packet]] = {}
        for packet in delivered:
            groups.setdefault(packet.path_length, []).append(packet)
        return {
            d: LatencySummary.from_packets(group)
            for d, group in sorted(groups.items())
        }


__all__ = ["MetricsRecorder", "LatencySummary"]
