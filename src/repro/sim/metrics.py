"""Metrics collection for protocol simulations.

One :class:`MetricsRecorder` per simulation run. Records a per-frame
time series (queue sizes, potential, cumulative counts) plus, at the
end, latency statistics derived from the delivered packets. Everything
the EXPERIMENTS tables report flows through here, so benches and tests
read a single, consistent schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.injection.packet import Packet


@dataclass
class LatencySummary:
    """Latency statistics (in slots) for a set of delivered packets."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    @staticmethod
    def from_packets(packets: Sequence[Packet]) -> "LatencySummary":
        if not packets:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0)
        latencies = np.asarray([p.latency() for p in packets], dtype=float)
        return LatencySummary(
            count=len(latencies),
            mean=float(latencies.mean()),
            median=float(np.median(latencies)),
            p95=float(np.percentile(latencies, 95)),
            maximum=float(latencies.max()),
        )


@dataclass
class MetricsRecorder:
    """Per-frame series plus end-of-run summaries."""

    frames: int = 0
    injected_total: int = 0
    queue_series: List[int] = field(default_factory=list)
    active_series: List[int] = field(default_factory=list)
    failed_series: List[int] = field(default_factory=list)
    potential_series: List[int] = field(default_factory=list)
    delivered_series: List[int] = field(default_factory=list)
    injected_series: List[int] = field(default_factory=list)

    def record_frame(
        self,
        injected: int,
        in_system: int,
        active: int,
        failed: int,
        potential: int,
        delivered_total: int,
    ) -> None:
        self.frames += 1
        self.injected_total += injected
        self.injected_series.append(injected)
        self.queue_series.append(in_system)
        self.active_series.append(active)
        self.failed_series.append(failed)
        self.potential_series.append(potential)
        self.delivered_series.append(delivered_total)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    @property
    def final_queue(self) -> int:
        return self.queue_series[-1] if self.queue_series else 0

    @property
    def max_queue(self) -> int:
        return max(self.queue_series) if self.queue_series else 0

    def mean_queue(self, tail_fraction: float = 0.5) -> float:
        """Mean in-system count over the trailing fraction of the run."""
        if not self.queue_series:
            return 0.0
        start = int(len(self.queue_series) * (1.0 - tail_fraction))
        return float(np.mean(self.queue_series[start:]))

    def delivered_count(self) -> int:
        return self.delivered_series[-1] if self.delivered_series else 0

    def throughput(self) -> float:
        """Delivered packets per frame."""
        if self.frames == 0:
            return 0.0
        return self.delivered_count() / self.frames

    def latency_summary(self, delivered: Sequence[Packet]) -> LatencySummary:
        return LatencySummary.from_packets(delivered)

    def latency_by_path_length(
        self, delivered: Sequence[Packet]
    ) -> Dict[int, LatencySummary]:
        """Latency statistics grouped by path length (for Theorem 8)."""
        groups: Dict[int, List[Packet]] = {}
        for packet in delivered:
            groups.setdefault(packet.path_length, []).append(packet)
        return {
            d: LatencySummary.from_packets(group)
            for d, group in sorted(groups.items())
        }


__all__ = ["MetricsRecorder", "LatencySummary"]
