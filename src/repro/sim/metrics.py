"""Metrics collection for protocol simulations.

One :class:`MetricsRecorder` per simulation run. Everything the
EXPERIMENTS tables report flows through here, so benches and tests read
a single, consistent schema. Two retention policies:

* ``full`` (the default, and exactly the historical behaviour) —
  per-frame Python lists for every series; memory grows linearly with
  the horizon, and every consumer can read the whole history.
* ``streaming`` — bounded memory. Per-frame values fold into the O(1)
  accumulators of :mod:`repro.sim.streaming` (exact count/sum/min/max,
  a ring window over the newest ``window`` frames, a quantile sketch
  for latencies) and the series lists stay empty. Counts, means and
  extremes are exact (bit-identical to a batch recompute from full
  history); latency median/p95 come from the sketch and carry its
  documented relative-error bound ``sketch_alpha``. The engine
  additionally releases delivered packets into the latency
  accumulators every ``release_interval`` frames (see
  ``FrameSimulation``), so store memory stays bounded too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.injection.packet import Packet
from repro.injection.store import PacketSequence
from repro.sim.streaming import (
    DEFAULT_SKETCH_ALPHA,
    DEFAULT_WINDOW,
    StreamingLatency,
    StreamingMoments,
    StreamingSeries,
)

#: Valid retention policies.
RETENTIONS = ("full", "streaming")

#: Frames between delivered-packet releases in streaming mode.
DEFAULT_RELEASE_INTERVAL = 64


@dataclass
class LatencySummary:
    """Latency statistics (in slots) for a set of delivered packets.

    An empty set has ``count == 0`` and ``NaN`` statistics — "no
    packets delivered" must not read like "packets delivered with zero
    latency" (the all-zero summary it used to produce was
    indistinguishable from genuinely instant delivery).
    """

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    @staticmethod
    def empty() -> "LatencySummary":
        nan = float("nan")
        return LatencySummary(0, nan, nan, nan, nan)

    @staticmethod
    def from_latencies(latencies) -> "LatencySummary":
        """Summary of a raw latency vector (in slots)."""
        latencies = np.asarray(latencies, dtype=float)
        if latencies.size == 0:
            return LatencySummary.empty()
        return LatencySummary(
            count=int(latencies.size),
            mean=float(latencies.mean()),
            median=float(np.median(latencies)),
            p95=float(np.percentile(latencies, 95)),
            maximum=float(latencies.max()),
        )

    @staticmethod
    def from_packets(packets: Sequence[Packet]) -> "LatencySummary":
        if isinstance(packets, PacketSequence):
            # Store-backed delivery sets: one vectorized gather instead
            # of a Python loop over views.
            if len(packets) == 0:
                return LatencySummary.empty()
            return LatencySummary.from_latencies(
                packets.store.latencies(packets.indices)
            )
        if not packets:
            return LatencySummary.empty()
        return LatencySummary.from_latencies(
            np.asarray([p.latency() for p in packets], dtype=float)
        )


def _checked_count(value, name: str) -> int:
    """A non-negative integral value, or a per-field error.

    Booleans are rejected explicitly — ``int(True)`` would silently
    read a malformed snapshot as frame/packet counts of 1.
    """
    if isinstance(value, (bool, np.bool_)):
        raise ConfigurationError(
            f"metrics state '{name}' must be a non-negative integer, "
            f"got {value!r}"
        )
    try:
        result = int(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"metrics state '{name}' must be a non-negative integer, "
            f"got {value!r}"
        ) from exc
    if result != value or result < 0:
        raise ConfigurationError(
            f"metrics state '{name}' must be a non-negative integer, "
            f"got {value!r}"
        )
    return result


@dataclass
class MetricsRecorder:
    """Per-frame series plus end-of-run summaries.

    In ``streaming`` retention the six series lists stay empty —
    per-frame values fold into bounded accumulators instead, and the
    summary accessors (``final_queue``, ``max_queue``, ``mean_queue``,
    ``delivered_count``, ``stability_verdict``, ``latency_summary``)
    answer from those. ``recent_queue_series`` exposes the ring window
    (the newest ``window`` frames) for sparklines and debugging.
    """

    frames: int = 0
    injected_total: int = 0
    queue_series: List[int] = field(default_factory=list)
    active_series: List[int] = field(default_factory=list)
    failed_series: List[int] = field(default_factory=list)
    potential_series: List[int] = field(default_factory=list)
    delivered_series: List[int] = field(default_factory=list)
    injected_series: List[int] = field(default_factory=list)
    retention: str = "full"
    window: int = DEFAULT_WINDOW
    release_interval: int = DEFAULT_RELEASE_INTERVAL
    sketch_alpha: float = DEFAULT_SKETCH_ALPHA

    #: Streaming-mode aux series tracked as plain moments.
    _AUX = ("active", "failed", "potential")

    def __post_init__(self):
        if self.retention not in RETENTIONS:
            raise ConfigurationError(
                f"metrics retention must be one of {', '.join(RETENTIONS)}, "
                f"got {self.retention!r}"
            )
        if self.release_interval < 1:
            raise ConfigurationError(
                f"metrics release_interval must be >= 1, "
                f"got {self.release_interval}"
            )
        if self.retention == "streaming":
            self._queue = StreamingSeries(self.window)
            self._aux = {name: StreamingMoments() for name in self._AUX}
            self._latency = StreamingLatency(self.sketch_alpha)
            self._delivered_total = 0
        else:
            self._queue = None
            self._aux = None
            self._latency = None
            self._delivered_total = 0

    @property
    def streaming(self) -> bool:
        return self.retention == "streaming"

    def record_frame(
        self,
        injected: int,
        in_system: int,
        active: int,
        failed: int,
        potential: int,
        delivered_total: int,
    ) -> None:
        self.frames += 1
        self.injected_total += injected
        if self._queue is not None:
            self._queue.push(in_system)
            aux = self._aux
            aux["active"].push(active)
            aux["failed"].push(failed)
            aux["potential"].push(potential)
            self._delivered_total = delivered_total
            return
        self.injected_series.append(injected)
        self.queue_series.append(in_system)
        self.active_series.append(active)
        self.failed_series.append(failed)
        self.potential_series.append(potential)
        self.delivered_series.append(delivered_total)

    # ------------------------------------------------------------------
    # Streaming-mode feeds (the engine's summarize-and-release hook)
    # ------------------------------------------------------------------

    def absorb_latencies(
        self, latencies: np.ndarray, path_lengths: np.ndarray
    ) -> None:
        """Fold released delivered-packet latencies into the sketch.

        Streaming mode only — in full retention the delivered set is
        kept whole and summarised at the end, exactly as before.
        """
        if self._latency is None:
            raise ConfigurationError(
                "absorb_latencies is a streaming-retention operation; "
                "this recorder retains full history"
            )
        self._latency.absorb(latencies, path_lengths)

    @property
    def released_count(self) -> int:
        """Delivered latencies already folded (0 in full retention)."""
        return self._latency.count if self._latency is not None else 0

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    _SERIES = (
        "queue_series",
        "active_series",
        "failed_series",
        "potential_series",
        "delivered_series",
        "injected_series",
    )

    def state_dict(self) -> dict:
        if self._queue is not None:
            return {
                "retention": "streaming",
                "frames": self.frames,
                "injected_total": self.injected_total,
                "delivered_total": self._delivered_total,
                "window": self.window,
                "release_interval": self.release_interval,
                "sketch_alpha": self.sketch_alpha,
                "queue": self._queue.state_dict(),
                "aux": {
                    name: acc.state_dict()
                    for name, acc in self._aux.items()
                },
                "latency": self._latency.state_dict(),
            }
        state = {"frames": self.frames, "injected_total": self.injected_total}
        for name in self._SERIES:
            state[name] = list(getattr(self, name))
        return state

    def load_state_dict(self, state: dict) -> None:
        if not isinstance(state, dict):
            raise ConfigurationError(
                f"metrics state must be a mapping, got {type(state).__name__}"
            )
        stored_streaming = state.get("retention") == "streaming"
        if stored_streaming != (self._queue is not None):
            stored = "streaming" if stored_streaming else "full"
            raise ConfigurationError(
                f"checkpoint metrics were recorded with retention="
                f"'{stored}' but this recorder is configured with "
                f"retention='{self.retention}'"
            )
        if stored_streaming:
            self._load_streaming_state(state)
            return
        try:
            frames = _checked_count(state["frames"], "frames")
            injected_total = _checked_count(
                state["injected_total"], "injected_total"
            )
            series = {}
            for name in self._SERIES:
                values = state[name]
                series[name] = [
                    _checked_count(v, name) for v in values
                ]
        except KeyError as exc:
            raise ConfigurationError(
                f"metrics state is missing {exc}"
            ) from exc
        except TypeError as exc:
            raise ConfigurationError(f"invalid metrics state: {exc}") from exc
        for name, values in series.items():
            if len(values) != frames:
                raise ConfigurationError(
                    f"metrics state '{name}' has {len(values)} entries for "
                    f"{frames} frames"
                )
        self.frames = frames
        self.injected_total = injected_total
        for name, values in series.items():
            setattr(self, name, values)

    def _load_streaming_state(self, state: dict) -> None:
        try:
            frames = _checked_count(state["frames"], "frames")
            injected_total = _checked_count(
                state["injected_total"], "injected_total"
            )
            delivered_total = _checked_count(
                state["delivered_total"], "delivered_total"
            )
            window = _checked_count(state["window"], "window")
            release_interval = _checked_count(
                state["release_interval"], "release_interval"
            )
            sketch_alpha = float(state["sketch_alpha"])
            queue_state = state["queue"]
            aux_state = state["aux"]
            latency_state = state["latency"]
        except KeyError as exc:
            raise ConfigurationError(
                f"streaming metrics state is missing {exc}"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"invalid streaming metrics state: {exc}"
            ) from exc
        if (
            window != self.window
            or release_interval != self.release_interval
            or sketch_alpha != self.sketch_alpha
        ):
            raise ConfigurationError(
                f"streaming metrics state was written for window={window}, "
                f"release_interval={release_interval}, sketch_alpha="
                f"{sketch_alpha}; this recorder is configured for "
                f"window={self.window}, release_interval="
                f"{self.release_interval}, sketch_alpha={self.sketch_alpha}"
            )
        if not isinstance(aux_state, dict) or set(aux_state) != set(
            self._AUX
        ):
            raise ConfigurationError(
                "streaming metrics state 'aux' must hold exactly "
                f"{sorted(self._AUX)}"
            )
        self._queue.load_state_dict(queue_state)
        for name in self._AUX:
            self._aux[name].load_state_dict(aux_state[name])
        self._latency.load_state_dict(latency_state)
        self.frames = frames
        self.injected_total = injected_total
        self._delivered_total = delivered_total

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    @property
    def final_queue(self) -> int:
        if self._queue is not None:
            return self._queue.last
        return self.queue_series[-1] if self.queue_series else 0

    @property
    def max_queue(self) -> int:
        if self._queue is not None:
            return int(self._queue.maximum) if self._queue.count else 0
        return max(self.queue_series) if self.queue_series else 0

    def mean_queue(self, tail_fraction: float = 0.5) -> float:
        """Mean in-system count over the trailing fraction of the run.

        ``tail_fraction`` must lie in ``(0, 1]`` — values above 1 used
        to produce a negative slice start that silently averaged a
        window *from the tail end*, reporting a wrong (and smaller)
        window as if it were the requested one. In streaming retention
        the tail is additionally clipped to the ring window (exact
        equality with full retention while ``frames <= window``).
        """
        if not 0.0 < tail_fraction <= 1.0:
            raise ConfigurationError(
                f"tail_fraction must be in (0, 1], got {tail_fraction}"
            )
        if self._queue is not None:
            return self._queue.tail_mean(tail_fraction)
        if not self.queue_series:
            return 0.0
        start = int(len(self.queue_series) * (1.0 - tail_fraction))
        return float(np.mean(self.queue_series[start:]))

    def recent_queue_series(self) -> List[int]:
        """The queue series available for display.

        The whole history in full retention; the newest ``window``
        frames (the ring contents) in streaming retention.
        """
        if self._queue is not None:
            return self._queue.values().tolist()
        return self.queue_series

    def delivered_count(self) -> int:
        if self._queue is not None:
            return self._delivered_total
        return self.delivered_series[-1] if self.delivered_series else 0

    def throughput(self) -> float:
        """Delivered packets per frame."""
        if self.frames == 0:
            return 0.0
        return self.delivered_count() / self.frames

    def stability_verdict(self, load_per_frame: float = 1.0, **kwargs):
        """Drift/blow-up verdict over the recorded queue series.

        Full retention calls :func:`~repro.sim.stability.assess_stability`
        on the whole series — byte-identical to the historical direct
        call. Streaming retention uses
        :func:`~repro.sim.stability.assess_stability_streaming` on the
        bounded queue tracker (exact delegation while the run fits the
        window, the windowed detector beyond).
        """
        from repro.sim.stability import (
            assess_stability,
            assess_stability_streaming,
        )

        if self._queue is not None:
            return assess_stability_streaming(
                self._queue, load_per_frame=load_per_frame, **kwargs
            )
        return assess_stability(
            self.queue_series, load_per_frame=load_per_frame, **kwargs
        )

    def _pending_latencies(
        self, delivered: Sequence[Packet]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(latencies, path lengths) of not-yet-released delivered."""
        if isinstance(delivered, PacketSequence):
            if len(delivered) == 0:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty
            indices = delivered.indices
            store = delivered.store
            return store.latencies(indices), store.path_lengths(indices)
        return (
            np.asarray([p.latency() for p in delivered], dtype=np.int64),
            np.asarray([p.path_length for p in delivered], dtype=np.int64),
        )

    def latency_summary(self, delivered: Sequence[Packet]) -> LatencySummary:
        """Latency statistics over every delivered packet of the run.

        Full retention summarises ``delivered`` directly. Streaming
        retention merges the already-released accumulators with the
        still-pending delivered set (without mutating either, so the
        call is idempotent): count/mean/max are exact, median/p95 come
        from the quantile sketch (relative error ``sketch_alpha``
        against the nearest-rank order statistic).
        """
        if self._latency is not None:
            pending, _ = self._pending_latencies(delivered)
            merged = self._latency.merged_stats(pending)
            if merged is None:
                return LatencySummary.empty()
            count, mean, median, p95, maximum = merged
            return LatencySummary(count, mean, median, p95, maximum)
        return LatencySummary.from_packets(delivered)

    def latency_by_path_length(
        self, delivered: Sequence[Packet]
    ) -> Dict[int, LatencySummary]:
        """Latency statistics grouped by path length (for Theorem 8)."""
        if self._latency is not None:
            pending, lengths = self._pending_latencies(delivered)
            return {
                length: LatencySummary(*stats)
                for length, stats in self._latency.merged_stats_by_length(
                    pending, lengths
                ).items()
            }
        if isinstance(delivered, PacketSequence):
            if len(delivered) == 0:
                return {}
            store, indices = delivered.store, delivered.indices
            lengths = store.path_lengths(indices)
            latencies = store.latencies(indices)
            return {
                int(d): LatencySummary.from_latencies(latencies[lengths == d])
                for d in np.unique(lengths)
            }
        groups: Dict[int, List[Packet]] = {}
        for packet in delivered:
            groups.setdefault(packet.path_length, []).append(packet)
        return {
            d: LatencySummary.from_packets(group)
            for d, group in sorted(groups.items())
        }


__all__ = [
    "DEFAULT_RELEASE_INTERVAL",
    "LatencySummary",
    "MetricsRecorder",
    "RETENTIONS",
]
