"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP-517 editable
installs (which build an editable wheel) fail. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` take the legacy
``setup.py develop`` path, which needs only setuptools. All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
