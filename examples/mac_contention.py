#!/usr/bin/env python
"""Multiple-access channel: symmetric vs asymmetric protocols (Section 7.1).

Eight stations share one channel. We run the same stochastic workload
through the two protocols the paper derives:

* the symmetric (anonymous) protocol built from Algorithm 2 — stable
  for injection rates up to 1/e (Corollary 16),
* the asymmetric Round-Robin-Withholding protocol — stable up to 1
  (Corollary 18),

at rates on both sides of 1/e, showing the separation: the symmetric
protocol destabilises between 1/e and 1 while round-robin sails on.

Run:  python examples/mac_contention.py
"""

import math
import os

import repro

# REPRO_EXAMPLES_FAST=1 shrinks the workload for smoke runs (the CI
# examples lane); output stays illustrative, numbers are not.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")


def run_mac(algorithm, rate, provisioned_rate, frames=None, seed=0):
    if frames is None:
        frames = 25 if FAST else 60
    net = repro.mac_network(8)
    model = repro.MultipleAccessChannel(net)
    # Fast mode caps the frame at hand-built parameters: the symmetric
    # protocol's Section-4 provisioning solves to ~1M-slot frames near
    # its certified rate, far beyond what a smoke run can afford.
    params = None
    if FAST:
        frame_length = 400
        params = repro.FrameParameters(
            frame_length=frame_length,
            phase1_budget=240,
            cleanup_budget=120,
            measure_budget=max(1.0, 1.5 * rate * frame_length),
            epsilon=0.5,
            rate=provisioned_rate,
            f_m=algorithm.network_bound(net.size_m).f(net.size_m),
            m=net.size_m,
        )
    protocol = repro.DynamicProtocol(
        model, algorithm, provisioned_rate, params=params,
        t_scale=0.02, rng=seed
    )
    routing = repro.build_routing_table(net)
    injection = repro.uniform_pair_injection(
        routing, model, rate, num_generators=8, rng=seed + 7
    )
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    metrics = simulation.metrics
    verdict = repro.assess_stability(
        metrics.queue_series,
        load_per_frame=max(1.0, rate * protocol.frame_length),
    )
    return metrics, verdict, protocol


def main() -> None:
    backoff = repro.MacBackoffScheduler(phi=1.0, delta=0.5)
    round_robin = repro.RoundRobinScheduler()

    backoff_cap = repro.certified_rate(backoff, 8, epsilon=0.5)
    rr_cap = repro.certified_rate(round_robin, 8, epsilon=0.3)
    print(f"certified rates: backoff {backoff_cap:.3f} "
          f"(paper band: up to 1/e = {1 / math.e:.3f}), "
          f"round-robin {rr_cap:.3f} (paper band: up to 1)\n")

    rows = []
    for name, algorithm, provisioned in (
        ("Algorithm 2 (symmetric)", backoff, backoff_cap),
        ("Round-Robin-Withholding", round_robin, rr_cap),
    ):
        for load_name, rate in (
            ("low (0.8x cert.)", 0.8 * provisioned),
            ("at certified", 0.95 * provisioned),
        ):
            metrics, verdict, protocol = run_mac(algorithm, rate, provisioned)
            rows.append(
                [
                    name,
                    load_name,
                    f"{rate:.3f}",
                    metrics.delivered_count(),
                    f"{metrics.mean_queue():.1f}",
                    verdict.stable,
                ]
            )

    print(
        repro.format_table(
            ["protocol", "load", "rate", "delivered", "tail queue", "stable"],
            rows,
            title="8-station multiple-access channel",
        )
    )

    # The separation: between 1/e and 1, only round-robin survives.
    mid_rate = 0.6  # > 1/e ~ 0.368, < 1
    _, rr_verdict, _ = run_mac(round_robin, mid_rate, rr_cap)
    print(
        f"\nat rate {mid_rate} (above 1/e): round-robin stable = "
        f"{rr_verdict.stable} — ids and withholding buy the gap between "
        "Corollary 16 and Corollary 18"
    )


if __name__ == "__main__":
    main()
