#!/usr/bin/env python
"""Post-mortem debugging with the event tracer and queueing cross-checks.

A deliberately under-provisioned protocol (phase-1 budget below the
arriving load) develops failures. Aggregate metrics say *that* queues
grew; the tracer says *what happened*: which links failed, how a single
packet bounced through failed buffers, and how long clean-up took. The
queueing cross-checks then quantify the damage: Little's law holds on
the stable run and the drift CI flags the overloaded one.

Run:  python examples/trace_debugging.py
"""

import os

import repro

# REPRO_EXAMPLES_FAST=1 shrinks the workload for smoke runs (the CI
# examples lane); output stays illustrative, numbers are not.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")
from repro.core.frames import FrameParameters


def build(phase1_budget, tracer=None, seed=3):
    net = repro.grid_network(3, 3)
    model = repro.PacketRoutingModel(net)
    params = FrameParameters(
        frame_length=60,
        phase1_budget=phase1_budget,
        cleanup_budget=20,
        measure_budget=6.0,
        epsilon=0.5,
        rate=0.1,
        f_m=1.0,
        m=net.size_m,
    )
    protocol = repro.DynamicProtocol(
        model,
        repro.SingleHopScheduler(),
        rate=0.1,
        params=params,
        cleanup_probability=0.5,
        rng=seed,
        tracer=tracer,
    )
    routing = repro.build_routing_table(net)
    injection = repro.uniform_pair_injection(
        routing, model, 0.1, num_generators=8, rng=seed + 100
    )
    return protocol, injection


def main() -> None:
    frames = 60 if FAST else 250

    # ---- healthy run -----------------------------------------------------
    protocol, injection = build(phase1_budget=30)
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    metrics = simulation.metrics
    sojourns = [
        (p.delivered_at - p.injected_at) / protocol.frame_length
        for p in protocol.delivered
    ]
    report = repro.littles_law_check(metrics.queue_series, sojourns)
    point, lower, upper = repro.drift_confidence_interval(
        metrics.queue_series, rng=0
    )
    print("healthy run (phase-1 budget 30):")
    print(f"  failures: {protocol.potential.total_failures}, "
          f"delivered {metrics.delivered_count()}/{metrics.injected_total}")
    print(f"  Little's law: L = {report.mean_in_system:.2f} vs "
          f"lambda*W = {report.predicted_in_system:.2f} "
          f"(gap {report.relative_gap:.1%}, "
          f"consistent: {report.consistent(tolerance=0.5)})")
    print(f"  drift/frame: {point:+.4f}, 95% CI [{lower:+.4f}, {upper:+.4f}]"
          f" -> contains 0: {lower <= 0 <= upper}")
    print()

    # ---- starved run, traced ----------------------------------------------
    tracer = repro.Tracer()
    protocol, injection = build(phase1_budget=2, tracer=tracer)
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    metrics = simulation.metrics
    point, lower, upper = repro.drift_confidence_interval(
        metrics.queue_series, rng=0
    )
    print("starved run (phase-1 budget 2), traced:")
    print(f"  failures: {protocol.potential.total_failures}, "
          f"delivered {metrics.delivered_count()}/{metrics.injected_total}")
    print(f"  drift/frame: {point:+.4f}, 95% CI [{lower:+.4f}, {upper:+.4f}]"
          f" -> significant divergence: {lower > 0}")
    print()

    counts = tracer.counts()
    print("  event counts: "
          + ", ".join(f"{kind.value}={counts[kind]}"
                      for kind in sorted(counts)))
    print("  failure hotspots (link, failures): "
          f"{tracer.failure_hotspots(top=3)}")
    print()

    # Pick a packet that failed and was later delivered; print its life.
    failed_ids = {e.packet_id for e in tracer.events(
        kind=repro.EventKind.FAILED)}
    delivered_ids = {e.packet_id for e in tracer.events(
        kind=repro.EventKind.DELIVERED)}
    recovered = sorted(failed_ids & delivered_ids)
    if recovered:
        pid = recovered[0]
        print(f"  journey of recovered packet {pid}:")
        for line in repro.format_journey(tracer, pid).splitlines():
            print("    " + line)
    else:
        print("  (no failed packet was delivered within the horizon)")


if __name__ == "__main__":
    main()
