#!/usr/bin/env python
"""Window adversaries vs the Section-5 random shift (Theorem 11).

A 3x3 grid packet-routing network is attacked by a fully *bursty*
``(w, lambda)``-bounded adversary: the entire window budget (80
measure) lands in the first slot of each 400-slot window, against a
tightly provisioned protocol whose phase 1 serves at most 30 measure
per 100-slot frame (average arrivals: 20 per frame — comfortably
within provisioning *on average*). We run it against:

1. the shifted protocol (paper Section 5) — packets wait a uniform
   random number of frames before entering, smoothing the burst, and
2. the same protocol with the shift disabled (ablation A3).

Both see the identical packet sequence; the window audit certifies the
adversary is really (w, lambda)-bounded, so the attack is "legal". The
ablation takes each 80-measure burst head-on: phase 1 overflows and
packets fail into the clean-up buffers, which drain at only ~1/(2em)
per frame. With the shift, arrivals per frame concentrate around their
mean and failures (nearly) disappear — Theorem 11's mechanism, live.

(The shift's price is a start-up transient: packets sit out up to
``delta_max`` frames, so the in-system count ramps before reaching
steady state. Verdicts below are taken on the post-warm-up tail.)

Run:  python examples/adversarial_bursts.py
"""

import os

import repro

# REPRO_EXAMPLES_FAST=1 shrinks the workload for smoke runs (the CI
# examples lane); output stays illustrative, numbers are not.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")
from repro.core.frames import FrameParameters


def run_case(shift_enabled, adversary_seed=11, tail_frames=None):
    if tail_frames is None:
        tail_frames = 40 if FAST else 200
    net = repro.grid_network(3, 3)
    model = repro.PacketRoutingModel(net)
    algorithm = repro.SingleHopScheduler()
    rate, window = 0.2, 400  # burst budget 80 > phase-1 budget 30
    params = FrameParameters(
        frame_length=100,
        phase1_budget=30,
        cleanup_budget=20,
        measure_budget=30.0,
        epsilon=0.5,
        rate=rate,
        f_m=1.0,
        m=net.size_m,
    )
    protocol = repro.ShiftedDynamicProtocol(
        model,
        algorithm,
        rate,
        window=window,
        params=params,
        shift_enabled=shift_enabled,
        rng=1,
    )
    warmup = protocol.delta_max + net.max_path_length + 5
    routing = repro.build_routing_table(net)
    pairs = [(s, d) for s, d in routing.pairs() if s == 0]
    paths = [routing.path(s, d) for s, d in pairs]
    adversary = repro.BurstyAdversary(
        model, paths, window=window, rate=rate, rng=adversary_seed
    )
    audit = repro.WindowAudit(model, window, rate)
    simulation = repro.FrameSimulation(protocol, adversary, audit=audit)
    simulation.run(warmup + tail_frames)
    metrics = simulation.metrics
    tail = metrics.queue_series[warmup:]
    verdict = repro.assess_stability(
        tail,
        load_per_frame=max(1.0, metrics.injected_total / simulation.frames_run),
    )
    return {
        "delivered": metrics.delivered_count(),
        "failures": protocol.inner.potential.total_failures,
        "tail_queue": sum(tail) / max(1, len(tail)),
        "held": protocol.held_count,
        "stable": verdict.stable,
        "worst_window": audit.worst_window_measure,
        "delta_max": protocol.delta_max if shift_enabled else 0,
        "tail_series": tail,
    }


def main() -> None:
    with_shift = run_case(shift_enabled=True)
    without_shift = run_case(shift_enabled=False)

    print(
        "bursty (w, lambda)-bounded adversary certified by the audit: "
        f"worst sliding-window measure {with_shift['worst_window']:.1f} "
        "(budget w*lambda = 80.0)\n"
    )
    rows = [
        [
            "with random shift (Sec. 5)",
            with_shift["delta_max"],
            with_shift["delivered"],
            with_shift["failures"],
            f"{with_shift['tail_queue']:.1f}",
            with_shift["stable"],
        ],
        [
            "shift disabled (A3)",
            0,
            without_shift["delivered"],
            without_shift["failures"],
            f"{without_shift['tail_queue']:.1f}",
            without_shift["stable"],
        ],
    ]
    print(
        repro.format_table(
            [
                "configuration",
                "delta_max",
                "delivered",
                "phase-1 failures",
                "tail queue",
                "stable (post-warm-up)",
            ],
            rows,
            title="bursty adversary, 3x3 grid, rate 0.2, window 400 slots",
        )
    )
    print()
    print(
        repro.line_chart(
            {
                "shifted": with_shift["tail_series"],
                "unshifted": without_shift["tail_series"],
            },
            title="post-warm-up in-system packets per frame",
        )
    )


if __name__ == "__main__":
    main()
