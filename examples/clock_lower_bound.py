#!/usr/bin/env python
"""The Figure-1 lower bound: why the global clock is unavoidable (Thm 20).

The instance: m-1 short links that never interfere with anything, plus
one long link that is received only when every short link is silent.

* With a global clock, even/odd time sharing serves the long link every
  other slot: stable for any per-link rate below 1/2.
* With local clocks only, short links get no feedback (their packets
  always go through), so nothing synchronises them; once the per-link
  rate reaches ln(m)/m the chance that all m-1 shorts idle in the same
  slot drops below the long link's arrival rate, and its queue diverges.

We sweep the rate across ln(m)/m for both protocols and print the
long-link queue growth — the separation Theorem 20 formalises as
"no local-clock protocol is m/(2 ln m)-competitive".

Run:  python examples/clock_lower_bound.py
"""

import math

import repro


def main() -> None:
    m = 64
    critical = math.log(m) / m
    print(f"Figure-1 instance with m={m} links; ln(m)/m = {critical:.4f}\n")

    rows = []
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        rate = factor * critical
        global_run = repro.simulate_figure1(
            m, rate, horizon=12_000, protocol="global", rng=1
        )
        local_run = repro.simulate_figure1(
            m, rate, horizon=12_000, protocol="local", rng=1
        )
        rows.append(
            [
                f"{factor:.2f} x ln(m)/m",
                f"{rate:.4f}",
                f"{global_run.long_queue_slope():+.4f}",
                global_run.final_long_queue,
                f"{local_run.long_queue_slope():+.4f}",
                local_run.final_long_queue,
            ]
        )

    print(
        repro.format_table(
            [
                "rate",
                "lambda",
                "global slope",
                "global queue",
                "local slope",
                "local queue",
            ],
            rows,
            title="long-link queue growth per slot (12k slots)",
        )
    )
    print(
        "\nreading: the global-clock protocol's slope stays ~0 well past "
        "ln(m)/m (it is stable to lambda < 1/2); the local-clock protocol "
        "diverges once lambda reaches ~ln(m)/m — a ~m/(2 ln m) gap in "
        "sustainable rate, matching Theorem 20."
    )


if __name__ == "__main__":
    main()
