#!/usr/bin/env python
"""Fleet survey: one claim, many networks, one process per network.

Kesselheim's guarantees are statements about *distributions* of
networks — so an honest data point averages over many instances, not
one. This example evaluates the linear-power stability claim
(Corollary 12) the fleet way:

1. describe the experiment once as a declarative ``ScenarioSpec``
   (topology generator + power scheme + scheduler + injection, all
   plain data),
2. stamp out a fleet: one spec per (topology size, seed) — every spec
   draws its *own* random geometric instance from its seed,
3. run the fleet through ``run_scenario_fleet``; with a process
   executor each network is rebuilt and simulated in its own worker,
   record-identical to the serial loop.

The printed table is the cross-network picture: stable fraction and
mean queue per topology size — the shape a paper figure averages over.

Run:  python examples/fleet_survey.py
"""

import os

import repro
from repro.scenario import preset_spec, run_scenario_fleet
from repro.sim.sharding import make_executor

# REPRO_EXAMPLES_FAST=1 shrinks the workload for smoke runs (the CI
# examples lane); output stays illustrative, numbers are not.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

SIZES = (10, 14) if FAST else (10, 14, 18, 22)
SEEDS = (0, 1) if FAST else (0, 1, 2, 3)
FRAMES = 25 if FAST else 80


def survey_size(nodes: int, executor) -> dict:
    """One data point: the preset at ``nodes``, averaged over seeds."""
    specs = [
        preset_spec(
            "sinr-linear", nodes=nodes, seed=seed, frames=FRAMES, rate=0.6
        )
        for seed in SEEDS
    ]
    # Serialisability is what makes the fleet shardable; round-tripping
    # through JSON here is a live assertion of that property.
    specs = [repro.ScenarioSpec.from_json(spec.to_json()) for spec in specs]
    result = run_scenario_fleet(specs, executor)
    summary = result.summary
    return {
        "nodes": nodes,
        "networks": summary.networks,
        "stable": summary.stable_fraction,
        "queue": summary.mean_tail_queue,
        "throughput": summary.mean_throughput,
        "delivered": summary.total_delivered,
    }


def main() -> None:
    executor_kind = "serial" if FAST else "process"
    executor = make_executor(executor_kind, None)
    print(
        "fleet survey: 'sinr-linear' preset at 0.6x certified rate, "
        f"{len(SEEDS)} network draw(s) per size, executor "
        f"'{executor_kind}'\n"
    )
    rows = []
    for nodes in SIZES:
        point = survey_size(nodes, executor)
        rows.append(
            [
                point["nodes"],
                point["networks"],
                f"{point['stable']:.2f}",
                f"{point['queue']:.1f}",
                f"{point['throughput']:.3f}",
                point["delivered"],
            ]
        )
    print(repro.format_table(
        ["nodes", "networks", "stable frac", "mean tail queue",
         "throughput", "delivered"],
        rows,
    ))
    print(
        "\nEach row averages independent topology draws — the "
        "distribution-level view the paper's corollaries quantify. "
        "Swap the executor for 'process' (or `repro fleet --executor "
        "process`) to give every network its own worker; the records "
        "are identical by construction."
    )
    survive_an_interruption()


def survive_an_interruption() -> None:
    """The fault-tolerant path: journal the fleet, kill it, resume it.

    ``run_resilient_fleet`` retries crashed cells with backoff,
    journals every completed cell to an on-disk manifest, and
    checkpoints each simulation every few frames — so an interrupted
    campaign resumes from where it died instead of frame 0. The CLI
    equivalent:

        repro fleet --spec fleet.json --checkpoint-dir runs/survey \\
            --max-retries 3 --cell-timeout 120
        # ... interrupted? same command again, plus --resume:
        repro fleet --spec fleet.json --checkpoint-dir runs/survey --resume
    """
    import json
    import shutil
    import tempfile

    from repro.sim.faults import ENV_VAR
    from repro.sim.resilience import RetryPolicy, run_resilient_fleet

    specs = [
        preset_spec(
            "sinr-linear", nodes=SIZES[0], seed=seed, frames=FRAMES, rate=0.6
        )
        for seed in SEEDS
    ]
    victim = len(specs) - 1
    workdir = tempfile.mkdtemp(prefix="fleet-survey-")
    try:
        # First pass: the test-only fault injector makes one cell fail
        # on every attempt — after two identical failures it is
        # quarantined, but every other cell completes and is journaled
        # to the manifest as it finishes.
        os.environ[ENV_VAR] = json.dumps(
            {"raise": [{"index": victim}]}
        )
        crashed = run_resilient_fleet(
            specs,
            manifest_dir=workdir,
            use_processes=False,
            retry_policy=RetryPolicy(backoff_base=0.0),
        )
        done = sum(1 for r in crashed.records if r is not None)
        # Second pass: the fault is gone (the outage is over); --resume
        # semantics recover the journaled cells from the manifest and
        # recompute only the one that died.
        del os.environ[ENV_VAR]
        outcome = run_resilient_fleet(
            specs, manifest_dir=workdir, resume=True, use_processes=False
        )
        recovered = sum(
            1 for s in outcome.statuses if s.source == "manifest"
        )
        print(
            f"\nresilient rerun: cell {victim} quarantined after "
            f"repeated injected failures ({done}/{len(specs)} journaled), "
            f"then resume recovered {recovered} cell(s) from the manifest "
            f"and recomputed the rest — complete={outcome.complete}"
        )
    finally:
        os.environ.pop(ENV_VAR, None)
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
