#!/usr/bin/env python
"""Fleet survey: one claim, many networks, one process per network.

Kesselheim's guarantees are statements about *distributions* of
networks — so an honest data point averages over many instances, not
one. This example evaluates the linear-power stability claim
(Corollary 12) the fleet way:

1. describe the experiment once as a declarative ``ScenarioSpec``
   (topology generator + power scheme + scheduler + injection, all
   plain data),
2. stamp out a fleet: one spec per (topology size, seed) — every spec
   draws its *own* random geometric instance from its seed,
3. run the fleet through ``run_scenario_fleet``; with a process
   executor each network is rebuilt and simulated in its own worker,
   record-identical to the serial loop.

The printed table is the cross-network picture: stable fraction and
mean queue per topology size — the shape a paper figure averages over.

Run:  python examples/fleet_survey.py
"""

import os

import repro
from repro.scenario import preset_spec, run_scenario_fleet
from repro.sim.sharding import make_executor

# REPRO_EXAMPLES_FAST=1 shrinks the workload for smoke runs (the CI
# examples lane); output stays illustrative, numbers are not.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

SIZES = (10, 14) if FAST else (10, 14, 18, 22)
SEEDS = (0, 1) if FAST else (0, 1, 2, 3)
FRAMES = 25 if FAST else 80


def survey_size(nodes: int, executor) -> dict:
    """One data point: the preset at ``nodes``, averaged over seeds."""
    specs = [
        preset_spec(
            "sinr-linear", nodes=nodes, seed=seed, frames=FRAMES, rate=0.6
        )
        for seed in SEEDS
    ]
    # Serialisability is what makes the fleet shardable; round-tripping
    # through JSON here is a live assertion of that property.
    specs = [repro.ScenarioSpec.from_json(spec.to_json()) for spec in specs]
    result = run_scenario_fleet(specs, executor)
    summary = result.summary
    return {
        "nodes": nodes,
        "networks": summary.networks,
        "stable": summary.stable_fraction,
        "queue": summary.mean_tail_queue,
        "throughput": summary.mean_throughput,
        "delivered": summary.total_delivered,
    }


def main() -> None:
    executor_kind = "serial" if FAST else "process"
    executor = make_executor(executor_kind, None)
    print(
        "fleet survey: 'sinr-linear' preset at 0.6x certified rate, "
        f"{len(SEEDS)} network draw(s) per size, executor "
        f"'{executor_kind}'\n"
    )
    rows = []
    for nodes in SIZES:
        point = survey_size(nodes, executor)
        rows.append(
            [
                point["nodes"],
                point["networks"],
                f"{point['stable']:.2f}",
                f"{point['queue']:.1f}",
                f"{point['throughput']:.3f}",
                point["delivered"],
            ]
        )
    print(repro.format_table(
        ["nodes", "networks", "stable frac", "mean tail queue",
         "throughput", "delivered"],
        rows,
    ))
    print(
        "\nEach row averages independent topology draws — the "
        "distribution-level view the paper's corollaries quantify. "
        "Swap the executor for 'process' (or `repro fleet --executor "
        "process`) to give every network its own worker; the records "
        "are identical by construction."
    )


if __name__ == "__main__":
    main()
