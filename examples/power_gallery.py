#!/usr/bin/env python
"""Power-assignment gallery: Section 6 on one network.

The same 24-node random geometric network under four power regimes:

* **uniform** — every link transmits at the same power,
* **linear** — ``p ~ d^alpha`` (Corollary 12: constant-competitive),
* **square-root** — ``p ~ d^(alpha/2)`` (Corollary 13: ``O(log^2 m)``),
* **free power control** — the Corollary-14 per-slot selector.

For each regime the script reports the single-slot feasibility picture
(the largest simultaneously feasible measure found by random greedy
packing and the raw feasible-set size), and for the fixed assignments,
the certified injection rate of the matching transformed scheduler and
a short stability run at half that rate.

Run:  python examples/power_gallery.py
"""

import os

import repro

# REPRO_EXAMPLES_FAST=1 shrinks the workload for smoke runs (the CI
# examples lane); output stays illustrative, numbers are not.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")
from repro.sinr.capacity import PowerControlCapacity


ALPHA, BETA, NOISE = 3.0, 1.0, 0.02


def fixed_power_cases(net):
    """(label, model, algorithm) for the three fixed assignments."""
    uniform = repro.SinrModel(
        net, alpha=ALPHA, beta=BETA, noise=NOISE,
        power=repro.UniformPower(scale_for(net)),
    )
    linear = repro.linear_power_model(net, alpha=ALPHA, beta=BETA, noise=NOISE)
    sqrt = repro.monotone_power_model(
        net, repro.SquareRootPower(), alpha=ALPHA, beta=BETA, noise=NOISE
    )
    m = net.size_m
    return [
        ("uniform", uniform,
         repro.TransformedAlgorithm(repro.DecayScheduler(), m=m,
                                    chi_scale=0.05)),
        ("linear", linear,
         repro.TransformedAlgorithm(repro.DecayScheduler(), m=m,
                                    chi_scale=0.05)),
        ("sqrt", sqrt,
         repro.TransformedAlgorithm(repro.KvScheduler(), m=m,
                                    chi_scale=0.05)),
    ]


def scale_for(net):
    """Uniform power large enough that the longest link clears noise."""
    longest = float(net.link_lengths().max())
    return 4.0 * BETA * NOISE * longest ** ALPHA


def main() -> None:
    net = repro.random_sinr_network(24, rng=9)
    print(f"network: {net.num_nodes} nodes, {net.num_links} links, "
          f"m = {net.size_m}")
    print()

    rows = []
    for label, model, algorithm in fixed_power_cases(net):
        model.check_all_singletons()
        upper = repro.feasible_measure_upper_bound(model, trials=32, rng=1)
        certified = repro.certified_rate(algorithm, net.size_m)
        rate = 0.5 * certified
        protocol = repro.DynamicProtocol(
            model, algorithm, rate, t_scale=0.001, rng=2
        )
        routing = repro.build_routing_table(net)
        injection = repro.uniform_pair_injection(
            routing, model, rate, num_generators=6, rng=3
        )
        simulation = repro.FrameSimulation(protocol, injection)
        simulation.run(25 if FAST else 60)
        metrics = simulation.metrics
        verdict = repro.assess_stability(
            metrics.queue_series,
            load_per_frame=max(1.0, metrics.injected_total / 60),
        )
        rows.append(
            [
                label,
                f"{upper:.2f}",
                f"{certified:.2e}",
                protocol.potential.total_failures,
                f"{metrics.mean_queue():.1f}",
                verdict.stable,
            ]
        )
    print(repro.format_table(
        ["power", "feasible measure", "certified rate", "failures",
         "tail queue", "stable @0.5x"],
        rows,
    ))
    print()

    # Free power control: how much of a measure-I set one slot can clear.
    linear = repro.linear_power_model(net, alpha=ALPHA, beta=BETA, noise=NOISE)
    selector = PowerControlCapacity(linear)
    requests = list(range(net.num_links))[:12]
    selection = selector.select(requests)
    print(f"free power control: one slot serves {len(selection.links)} of "
          f"{len(requests)} offered links simultaneously")
    print("(Corollary 14: the selector clears ~constant measure per slot;")
    print(" bench_e7_power_control.py sweeps this across network sizes.)")


if __name__ == "__main__":
    main()
