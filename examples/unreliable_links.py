#!/usr/bin/env python
"""Section-9 gallery: loss, jamming, and fading on one network.

The paper's discussion says unreliable networks need no new machinery:
"it suffices to consider the effect on the respective static schedule
length." This example makes that concrete three times on the same
3x3 packet-routing grid, with the same tight frame budgets:

1. **iid loss** (``UnreliableModel``): each successful transmission is
   lost with probability p; budgets scale by ``1/(1-p)``.
2. **bounded jammer** (``JammedModel``): a ``(window, sigma)``-bounded
   adversary erases its budgeted fraction of slots; budgets scale by
   ``1/(1-sigma)``.
3. **Rayleigh fading** (``RayleighFadingSinrModel``, on a geometric
   SINR variant): gains fade per slot; budgets scale by the closed-form
   worst singleton success probability.

Each row of the output shows the unadjusted run accruing failures and
the adjusted run restoring zero-failure delivery.

Run:  python examples/unreliable_links.py
"""

import numpy as np

import repro
from repro.core.frames import FrameParameters


def run(model, phase1_budget, frames=120, seed=5):
    net = model.network
    params = FrameParameters(
        frame_length=400,
        phase1_budget=min(360, phase1_budget),
        cleanup_budget=30,
        measure_budget=20.0,
        epsilon=0.5,
        rate=0.05,
        f_m=1.0,
        m=net.size_m,
    )
    protocol = repro.DynamicProtocol(
        model, repro.SingleHopScheduler(), rate=0.05, params=params, rng=seed
    )
    routing = repro.build_routing_table(net)
    injection = repro.uniform_pair_injection(
        routing, model, 0.05, num_generators=6, rng=7
    )
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    return protocol, simulation.metrics


def main() -> None:
    net = repro.grid_network(3, 3)
    base = repro.PacketRoutingModel(net)
    base_budget = 40
    rows = []

    # ---- 1. iid loss -----------------------------------------------------
    loss = 0.4
    factor = repro.reliability_budget_factor(loss, slack=2.0)
    for label, budget in (("original", base_budget),
                          ("adjusted", int(base_budget * factor))):
        model = repro.UnreliableModel(base, loss, rng=11)
        protocol, metrics = run(model, budget)
        rows.append([f"iid loss p={loss}", label,
                     protocol.potential.total_failures,
                     metrics.delivered_count(), metrics.injected_total])

    # ---- 2. bounded jammer -----------------------------------------------
    sigma = 0.4
    factor = repro.jamming_budget_factor(sigma, slack=2.0)
    for label, budget in (("original", base_budget),
                          ("adjusted", int(base_budget * factor))):
        pattern = repro.FrontLoadedPattern(window=100, sigma=sigma)
        model = repro.JammedModel(base, pattern)
        protocol, metrics = run(model, budget)
        rows.append([f"jammer sigma={sigma}", label,
                     protocol.potential.total_failures,
                     metrics.delivered_count(), metrics.injected_total])

    # ---- 3. Rayleigh fading (geometric SINR variant) ----------------------
    sinr_net = repro.random_sinr_network(12, rng=31)
    crisp = repro.linear_power_model(sinr_net, alpha=3.0, beta=1.0, noise=0.0)
    signals = crisp.signal_strengths()
    noise = float(-np.log(0.5) * signals.min())  # worst link: p = 0.5
    faded = repro.RayleighFadingSinrModel(
        sinr_net, alpha=3.0, beta=1.0, noise=noise,
        power=crisp.power_assignment, rng=13,
    )
    p_min = repro.worst_singleton_success(faded)
    factor = repro.fading_budget_factor(p_min, slack=1.5)
    fading_budget = 210
    for label, budget in (("original", fading_budget),
                          ("adjusted", int(fading_budget * factor))):
        model = repro.RayleighFadingSinrModel(
            sinr_net, alpha=3.0, beta=1.0, noise=noise,
            power=crisp.power_assignment,
            weight_matrix=np.array(crisp.weight_matrix()), rng=13,
        )
        params = FrameParameters(
            frame_length=700, phase1_budget=min(620, budget),
            cleanup_budget=70, measure_budget=9.0, epsilon=0.5,
            rate=0.01, f_m=1.0, m=sinr_net.size_m,
        )
        protocol = repro.DynamicProtocol(
            model, repro.DecayScheduler(), rate=0.01, params=params, rng=5
        )
        routing = repro.build_routing_table(sinr_net)
        injection = repro.uniform_pair_injection(
            routing, model, 0.01, num_generators=6, rng=7
        )
        simulation = repro.FrameSimulation(protocol, injection)
        simulation.run(80)
        rows.append([f"fading p_min={p_min:.2f}", label,
                     protocol.potential.total_failures,
                     simulation.metrics.delivered_count(),
                     simulation.metrics.injected_total])

    print(repro.format_table(
        ["unreliability", "budget", "failures", "delivered", "injected"],
        rows,
    ))
    print()
    print("In all three mechanisms the adjusted budget eliminates the")
    print("failures — only the static schedule length changed, exactly as")
    print("the paper's Section 9 predicts.")


if __name__ == "__main__":
    main()
