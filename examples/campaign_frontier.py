#!/usr/bin/env python
"""Campaign frontier: bisect the stable-rate boundary per scheduler.

The paper's headline claims say *where the stable-rate boundary sits*
for each scheduler (Kesselheim, PODC 2012) — but a fixed rate sweep
spends most of its simulations far from that boundary. This example
runs the same survey the `repro campaign` CLI does, as a library call:

1. describe a cross-product grid as one plain-data ``CampaignSpec``
   (here: one MAC network, two schedulers, a rate-search axis),
2. let ``run_campaign`` bracket each cell's boundary at the search
   range's endpoints and bisect on injection rate — majority verdict
   over the seeds per probe — until the bracket is narrower than the
   tolerance,
3. read the result two ways: an ascii phase diagram (the paper-figure
   shape) and the probe ledger showing how few simulations the
   bisection spent compared to a fixed grid at the same resolution.

The round-robin cell brackets its boundary near 1.5x the certified
rate; the single-hop cell is unstable already at the low end of the
search range, which the diagram reports as a one-sided bound instead
of a fake frontier.

Run:  python examples/campaign_frontier.py
"""

import os

from repro.scenario import campaign_from_data, run_campaign

# REPRO_EXAMPLES_FAST=1 shrinks the workload for smoke runs (the CI
# examples lane); output stays illustrative, numbers are not.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

CAMPAIGN = {
    "name": "mac-scheduler-frontier",
    "axes": {
        "topology": [{"name": "mac", "kwargs": {"num_stations": 8}}],
        "model": ["mac"],
        "scheduler": ["round-robin", "single-hop"],
        "injection": ["uniform-pairs"],
    },
    "seeds": [0] if FAST else [0, 1],
    "frames": 40 if FAST else 80,
    "search": {
        "rate_low": 0.5,
        "rate_high": 2.0,
        "tolerance": 0.25 if FAST else 0.1,
    },
}


def main() -> None:
    spec = campaign_from_data(CAMPAIGN)
    search = spec.search
    print(
        f"campaign '{spec.name}': {len(spec.expand())} cell(s) x "
        f"{len(spec.seeds)} seed(s), rate in "
        f"[{search.rate_low:g}, {search.rate_high:g}] x certified, "
        f"tolerance {search.tolerance:g}\n"
    )
    result = run_campaign(spec)

    print(result.phase_diagram())
    print()
    for cell in result.cells:
        scheduler = cell.labels["scheduler"]
        probes = ", ".join(
            f"{probe.rate:.3g}{'+' if probe.stable else '-'}"
            for probe in cell.probes
        )
        if cell.status == "bracketed":
            where = (f"frontier {cell.frontier:.3g} "
                     f"(bracket [{cell.lower:.3g}, {cell.upper:.3g}])")
        elif cell.status == "below-range":
            where = f"unstable already at {search.rate_low:g}"
        else:
            where = f"still stable at {search.rate_high:g}"
        print(f"{scheduler}: {where}")
        print(f"  probes (rate, +stable/-unstable): {probes}")
    print()
    print(
        f"simulations: {result.total_simulations} vs "
        f"{result.grid_equivalent_simulations} for a fixed rate grid "
        "at the same boundary resolution"
    )


if __name__ == "__main__":
    main()
