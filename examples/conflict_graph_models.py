#!/usr/bin/env python
"""Conflict-graph models: one framework, four classic interference models.

Section 7.2's pitch is that picking a conflict graph and an ordering
instantly yields a dynamic protocol for any graph-based interference
model. This example builds, on ONE 5x5 grid deployment:

* the node-constraint model (links sharing a node conflict),
* the protocol model (guard zones around receivers),
* the radio-network model (any second in-range sender kills reception),
* distance-2 matching (links conflict within the connectivity radius),

computes each model's inductive independence number under the length
ordering (Definition 1), runs the same stochastic workload through the
transformed-decay protocol on each, and plots the queue trajectories as
an ASCII chart. All four stay flat — the same machinery covers them
all, at rates scaled by the model's rho.

Run:  python examples/conflict_graph_models.py
"""

import os

import repro

# REPRO_EXAMPLES_FAST=1 shrinks the workload for smoke runs (the CI
# examples lane); output stays illustrative, numbers are not.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")
from repro.interference.builders import (
    distance2_matching_conflicts,
    node_constraint_conflicts,
    protocol_model_conflicts,
    radio_network_conflicts,
)


def build_models(net):
    builders = {
        "node-constraint": lambda: node_constraint_conflicts(net),
        "protocol-model": lambda: protocol_model_conflicts(net, 0.5),
        "radio-network": lambda: radio_network_conflicts(net, 1.0),
        "distance-2": lambda: distance2_matching_conflicts(net, 1.0),
    }
    ordering = repro.length_ordering(net)
    models = {}
    for name, build in builders.items():
        conflicts = build()
        model = repro.ConflictGraphModel(net, conflicts, ordering=ordering)
        rho = repro.inductive_independence_for_ordering(
            model.conflicts, ordering, exact_limit=14
        )
        models[name] = (model, rho)
    return models


def main() -> None:
    net = repro.grid_network(5, 5)
    routing = repro.build_routing_table(net)
    models = build_models(net)

    algorithm = repro.TransformedAlgorithm(
        repro.DecayScheduler(), m=net.size_m, chi_scale=0.05
    )
    certified = repro.certified_rate(algorithm, net.size_m)

    rows, charts = [], {}
    for name, (model, rho) in models.items():
        rate = 0.6 * certified
        protocol = repro.DynamicProtocol(
            model, algorithm, rate, t_scale=0.001, rng=1
        )
        injection = repro.uniform_pair_injection(
            routing, model, rate, num_generators=4, rng=2
        )
        simulation = repro.FrameSimulation(protocol, injection)
        frames = 25 if FAST else 60
        simulation.run(frames)
        metrics = simulation.metrics
        verdict = repro.assess_stability(
            metrics.queue_series,
            load_per_frame=max(1.0, metrics.injected_total / frames),
        )
        charts[name] = metrics.queue_series
        rows.append(
            [
                name,
                rho,
                metrics.injected_total,
                metrics.delivered_count(),
                f"{metrics.mean_queue():.1f}",
                verdict.stable,
            ]
        )

    print(
        repro.format_table(
            ["model", "rho (length ordering)", "injected", "delivered",
             "tail queue", "stable"],
            rows,
            title="four conflict-graph models, one protocol (5x5 grid)",
        )
    )
    print()
    print(repro.line_chart(charts, title="in-system packets per frame"))


if __name__ == "__main__":
    main()
