#!/usr/bin/env python
"""Quickstart: a stable dynamic protocol on a random SINR network.

Builds the full paper pipeline in ~30 lines:

1. a random geometric network,
2. the linear-power SINR model with its Corollary-12 weight matrix,
3. the decay static scheduler, repaired by the Section-3 transformation,
4. the Section-4 dynamic protocol provisioned at half its certified rate,
5. stochastic injection at exactly that rate,

then runs 150 frames and prints the queue trajectory, throughput, and
latency statistics. The queue hovers instead of growing — the
Theorem-3 stability guarantee, live.

Run:  python examples/quickstart.py
"""

import os

import repro

# REPRO_EXAMPLES_FAST=1 shrinks the workload for smoke runs (the CI
# examples lane); output stays illustrative, numbers are not.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")


def main() -> None:
    net = repro.random_sinr_network(30, rng=0)
    print(f"network: {net}")

    model = repro.linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)
    algorithm = repro.TransformedAlgorithm(
        repro.DecayScheduler(), m=net.size_m, chi_scale=0.05
    )

    certified = repro.certified_rate(algorithm, net.size_m)
    rate = 0.5 * certified
    print(f"certified rate 1/f(m) band: {certified:.6f}; injecting at {rate:.6f}")

    protocol = repro.DynamicProtocol(model, algorithm, rate, t_scale=0.001, rng=1)
    params = protocol.params
    print(
        f"frames: T={params.frame_length} slots, phase-1 budget T'="
        f"{params.phase1_budget}, clean-up budget {params.cleanup_budget}, "
        f"J={params.measure_budget:.1f}"
    )

    routing = repro.build_routing_table(net)
    injection = repro.uniform_pair_injection(routing, model, rate, rng=2)

    simulation = repro.FrameSimulation(protocol, injection)
    frames = 30 if FAST else 150
    simulation.run(frames)
    metrics = simulation.metrics

    print(f"\nafter {frames} frames:")
    print(f"  injected  : {metrics.injected_total}")
    print(f"  delivered : {metrics.delivered_count()}")
    print(f"  in flight : {protocol.packets_in_system}")
    print(f"  failures  : {protocol.potential.total_failures}")
    print(f"  queue tail: {metrics.queue_series[-8:]}")

    verdict = repro.assess_stability(
        metrics.queue_series, load_per_frame=rate * protocol.frame_length
    )
    print(f"  stable    : {verdict.stable} "
          f"(normalised drift {verdict.normalised_slope:+.5f})")

    latency = metrics.latency_summary(protocol.delivered)
    print(
        f"  latency   : mean {latency.mean / protocol.frame_length:.2f} frames, "
        f"p95 {latency.p95 / protocol.frame_length:.2f} frames"
    )

    print("\nlatency by path length (Theorem 8 says ~linear in d):")
    rows = []
    for d, summary in metrics.latency_by_path_length(protocol.delivered).items():
        rows.append([d, summary.count, summary.mean / protocol.frame_length])
    print(repro.format_table(["hops d", "packets", "mean latency (frames)"], rows))


if __name__ == "__main__":
    main()
