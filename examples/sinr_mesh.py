#!/usr/bin/env python
"""A multi-hop SINR mesh under three power regimes (paper Section 6).

Scenario from the paper's motivation: a city-scale wireless mesh where
packets hop between relay nodes. We build one network and drive the
dynamic protocol with the three Section-6 power regimes:

* linear power      (Corollary 12 — constant-competitive),
* square-root power (monotone sub-linear, Corollary 13 setting),
* free power control (Corollary 14, centralized scheduler).

For each we report the certified rate, the measured queue behaviour at
70% of it, and the single-slot feasibility bound the competitive ratio
compares against. The point of the demo: all three regimes are *stable*
at their certified load, but they certify different fractions of the
feasibility bound — the competitive-ratio separation of Section 6.

Run:  python examples/sinr_mesh.py
"""

import os

import repro

# REPRO_EXAMPLES_FAST=1 shrinks the workload for smoke runs (the CI
# examples lane); output stays illustrative, numbers are not.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")
from repro.sinr.weights import monotone_power_model
from repro.staticsched.kv import KvScheduler


def run_regime(name, model, algorithm, frames=None, seed=0):
    if frames is None:
        frames = 25 if FAST else 80
    m = model.network.size_m
    certified = repro.certified_rate(algorithm, m)
    rate = 0.7 * certified
    protocol = repro.DynamicProtocol(model, algorithm, rate, t_scale=0.001,
                                     rng=seed)
    routing = repro.build_routing_table(model.network)
    injection = repro.uniform_pair_injection(
        routing, model, rate, num_generators=4, rng=seed + 1
    )
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    metrics = simulation.metrics
    verdict = repro.assess_stability(
        metrics.queue_series,
        load_per_frame=max(1.0, rate * protocol.frame_length),
    )
    upper = repro.feasible_measure_upper_bound(model, trials=24, rng=9)
    return [
        name,
        f"{certified:.2e}",
        f"{upper:.2f}",
        f"{upper / certified:.1f}",
        metrics.delivered_count(),
        verdict.stable,
    ]


def main() -> None:
    net = repro.random_sinr_network(24, rng=3)
    print(f"mesh: {net}, link-length diversity Delta="
          f"{net.length_diversity():.1f}\n")
    m = net.size_m

    rows = []

    linear_model = repro.linear_power_model(net, alpha=3.0, beta=1.0,
                                            noise=0.02)
    linear_algorithm = repro.TransformedAlgorithm(
        repro.DecayScheduler(), m=m, chi_scale=0.05
    )
    rows.append(run_regime("linear power", linear_model, linear_algorithm))

    sqrt_model = monotone_power_model(
        net, repro.SquareRootPower(), alpha=3.0, beta=1.0, noise=0.02
    )
    sqrt_algorithm = repro.TransformedAlgorithm(
        KvScheduler(), m=m, chi_scale=0.05
    )
    rows.append(run_regime("sqrt power (monotone)", sqrt_model, sqrt_algorithm))

    pc_model = repro.SinrModel(
        net, alpha=3.0, beta=1.0, noise=0.02,
        weight_matrix=repro.power_control_weights(net, 3.0),
    )
    pc_algorithm = repro.TransformedAlgorithm(
        repro.PowerControlScheduler(), m=m, chi_scale=0.05
    )
    rows.append(run_regime("free power control", pc_model, pc_algorithm))

    print(
        repro.format_table(
            [
                "regime",
                "certified rate",
                "feasibility bound",
                "ratio",
                "delivered",
                "stable",
            ],
            rows,
            title="Section-6 power regimes on one mesh (70% of certified load)",
        )
    )


if __name__ == "__main__":
    main()
